package fsim

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// ErrInjectedWrite is the failure MemFS injects when the torn-write
// failpoint triggers mid-write.
var ErrInjectedWrite = errors.New("fsim: injected write failure (torn write)")

// MemFS is a deterministic in-memory file system with an explicit
// durable/volatile split:
//
//   - Write appends to the volatile image only,
//   - Sync promotes a file's volatile image to the durable image,
//   - Crash() resets every volatile image to its durable state — the
//     simulated kill -9.
//
// Rename is modeled as atomic and immediately durable (a journaling file
// system's rename-after-fsync), carrying each image's own content: renaming
// a never-synced file leaves nothing durable under the new name, which is
// exactly the bug the model is meant to catch.
type MemFS struct {
	mu       sync.Mutex
	volatile map[string][]byte
	durable  map[string][]byte
	dirs     map[string]bool

	writeBudget int64 // bytes until injected write failure; <0 = unlimited
	syncErr     error // next Sync fails with this (one-shot)
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{
		volatile:    map[string][]byte{},
		durable:     map[string][]byte{},
		dirs:        map[string]bool{},
		writeBudget: -1,
	}
}

func clean(name string) string { return path.Clean(strings.ReplaceAll(name, "\\", "/")) }

// --- failpoints ---

// FailWritesAfter arms the torn-write failpoint: the next n bytes written
// (across all files) succeed, then the write that crosses the budget
// persists only its leading fragment and fails; later writes fail with
// nothing written. Pass a negative n to disarm.
func (m *MemFS) FailWritesAfter(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeBudget = n
}

// FailNextSync makes the next Sync call fail with err without promoting
// anything to the durable image (the "short fsync").
func (m *MemFS) FailNextSync(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncErr = err
}

// FlipBit XORs one bit of name at byte offset off in both images —
// simulated media corruption of data already on disk.
func (m *MemFS) FlipBit(name string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	flipped := false
	for _, img := range []map[string][]byte{m.volatile, m.durable} {
		if b, ok := img[name]; ok && off >= 0 && off < int64(len(b)) {
			b[off] ^= 0x40
			flipped = true
		}
	}
	if !flipped {
		return fmt.Errorf("fsim: FlipBit(%s, %d): no such byte", name, off)
	}
	return nil
}

// Crash discards every unsynced write: all volatile images reset to their
// durable state. Open handles keep working against the post-crash content
// (real crashes kill the process too; tests reopen through a fresh FS view
// or the same MemFS).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.volatile = map[string][]byte{}
	for n, b := range m.durable {
		m.volatile[n] = append([]byte(nil), b...)
	}
}

// CloneDurable returns a new MemFS whose content is this one's durable
// image — the disk a recovery process would see after a crash. Failpoints
// are not inherited.
func (m *MemFS) CloneDurable() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for n, b := range m.durable {
		c.durable[n] = append([]byte(nil), b...)
		c.volatile[n] = append([]byte(nil), b...)
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// DurableLen returns the durable size of name (0 if absent).
func (m *MemFS) DurableLen(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.durable[clean(name)]))
}

// SetDurable installs content as both images of name (test setup).
func (m *MemFS) SetDurable(name string, content []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	m.durable[name] = append([]byte(nil), content...)
	m.volatile[name] = append([]byte(nil), content...)
}

// --- FS interface ---

type memFile struct {
	fs     *MemFS
	name   string
	rdOff  int64
	closed bool
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	m.volatile[name] = nil
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if _, ok := m.volatile[name]; !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if _, ok := m.volatile[name]; !ok {
		m.volatile[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = clean(oldname), clean(newname)
	v, ok := m.volatile[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	m.volatile[newname] = v
	delete(m.volatile, oldname)
	if d, ok := m.durable[oldname]; ok {
		m.durable[newname] = d
		delete(m.durable, oldname)
	} else {
		// Source never synced: nothing durable lands under the new name.
		delete(m.durable, newname)
	}
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if _, ok := m.volatile[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.volatile, name)
	delete(m.durable, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	b, ok := m.volatile[name]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(b)) {
		return fmt.Errorf("fsim: truncate %s to %d (size %d)", name, size, len(b))
	}
	m.volatile[name] = b[:size:size]
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	b, ok := m.volatile[name]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), b...), nil
}

func (m *MemFS) List(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	prefix := dir + "/"
	if dir == "." || dir == "/" {
		prefix = ""
	}
	var out []string
	for n := range m.volatile {
		if !strings.HasPrefix(n, prefix) {
			continue
		}
		rest := strings.TrimPrefix(n, prefix)
		if !strings.Contains(rest, "/") {
			out = append(out, rest)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[clean(dir)] = true
	return nil
}

func (m *MemFS) Exists(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if _, ok := m.volatile[name]; ok {
		return true
	}
	return m.dirs[name]
}

// --- memFile ---

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	n := len(p)
	var fail bool
	if f.fs.writeBudget >= 0 {
		if int64(n) > f.fs.writeBudget {
			n = int(f.fs.writeBudget)
			fail = true
		}
		f.fs.writeBudget -= int64(n)
	}
	f.fs.volatile[f.name] = append(f.fs.volatile[f.name], p[:n]...)
	if fail {
		return n, ErrInjectedWrite
	}
	return n, nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	b := f.fs.volatile[f.name]
	if f.rdOff >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[f.rdOff:])
	f.rdOff += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	b := f.fs.volatile[f.name]
	if off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if err := f.fs.syncErr; err != nil {
		f.fs.syncErr = nil
		return err
	}
	f.fs.durable[f.name] = append([]byte(nil), f.fs.volatile[f.name]...)
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.fs.volatile[f.name])), nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
