package fsim

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestMemFSDurableVolatileSplit(t *testing.T) {
	fs := NewMemFS()
	f, err := fs.Create("db/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello "))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("world")) // never synced

	fs.Crash()
	b, err := fs.ReadFile("db/wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello " {
		t.Fatalf("after crash: %q, want synced prefix only", b)
	}
}

func TestMemFSTornWriteFailpoint(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	fs.FailWritesAfter(3)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjectedWrite) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	if n, err := f.Write([]byte("z")); n != 0 || err == nil {
		t.Fatalf("post-budget write: n=%d err=%v", n, err)
	}
	b, _ := fs.ReadFile("x")
	if string(b) != "abc" {
		t.Fatalf("volatile content %q, want torn prefix", b)
	}
	fs.FailWritesAfter(-1)
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("disarmed failpoint still fails: %v", err)
	}
}

func TestMemFSSyncFailpoint(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("x")
	f.Write([]byte("data"))
	boom := errors.New("boom")
	fs.FailNextSync(boom)
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync err %v", err)
	}
	fs.Crash()
	b, _ := fs.ReadFile("x")
	if len(b) != 0 {
		t.Fatalf("failed sync promoted data: %q", b)
	}
	if err := f.Sync(); err != nil { // one-shot failpoint
		t.Fatalf("second sync: %v", err)
	}
}

func TestMemFSRenameDurability(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.Create("m.tmp")
	f.Write([]byte("v1"))
	f.Sync()
	f.Close()
	if err := fs.Rename("m.tmp", "m"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if b, _ := fs.ReadFile("m"); string(b) != "v1" {
		t.Fatalf("synced rename lost: %q", b)
	}
	if fs.Exists("m.tmp") {
		t.Fatal("source survived rename")
	}

	// Renaming a never-synced file leaves nothing durable.
	g, _ := fs.Create("n.tmp")
	g.Write([]byte("v2"))
	g.Close()
	fs.Rename("n.tmp", "n")
	fs.Crash()
	if b, _ := fs.ReadFile("n"); len(b) != 0 {
		t.Fatalf("unsynced rename durable: %q", b)
	}
}

func TestMemFSFlipBitAndClone(t *testing.T) {
	fs := NewMemFS()
	fs.SetDurable("t", []byte{1, 2, 3})
	if err := fs.FlipBit("t", 1); err != nil {
		t.Fatal(err)
	}
	b, _ := fs.ReadFile("t")
	if b[1] == 2 {
		t.Fatal("bit not flipped")
	}
	c := fs.CloneDurable()
	cb, _ := c.ReadFile("t")
	if cb[1] != b[1] {
		t.Fatal("clone diverges from durable image")
	}
	if err := fs.FlipBit("t", 99); err == nil {
		t.Fatal("out-of-range flip succeeded")
	}
}

func TestMemFSListAndTruncate(t *testing.T) {
	fs := NewMemFS()
	fs.SetDurable("d/a", []byte("aa"))
	fs.SetDurable("d/b", []byte("bb"))
	fs.SetDurable("d/sub/c", []byte("cc"))
	names, err := fs.List("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if err := fs.Truncate("d/a", 1); err != nil {
		t.Fatal(err)
	}
	if b, _ := fs.ReadFile("d/a"); string(b) != "a" {
		t.Fatalf("truncate: %q", b)
	}
	if err := fs.Truncate("d/a", 5); err == nil {
		t.Fatal("grow-truncate succeeded")
	}
}

// The OS implementation round-trips through a real temp dir.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	f, err := OS.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("abc"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	af, err := OS.OpenAppend(p)
	if err != nil {
		t.Fatal(err)
	}
	af.Write([]byte("def"))
	af.Sync()
	af.Close()
	b, err := OS.ReadFile(p)
	if err != nil || string(b) != "abcdef" {
		t.Fatalf("read %q err %v", b, err)
	}
	if err := OS.Rename(p, filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if OS.Exists(p) || !OS.Exists(filepath.Join(dir, "g")) {
		t.Fatal("rename state wrong")
	}
	names, err := OS.List(dir)
	if err != nil || len(names) != 1 || names[0] != "g" {
		t.Fatalf("List %v err %v", names, err)
	}
	if err := OS.Truncate(filepath.Join(dir, "g"), 2); err != nil {
		t.Fatal(err)
	}
	rf, _ := OS.Open(filepath.Join(dir, "g"))
	var buf [8]byte
	n, _ := rf.ReadAt(buf[:], 0)
	if string(buf[:n]) != "ab" {
		t.Fatalf("ReadAt %q", buf[:n])
	}
	if sz, _ := rf.Size(); sz != 2 {
		t.Fatalf("Size %d", sz)
	}
	rf.Close()
	if err := OS.Remove(filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Open(filepath.Join(dir, "g")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open removed: %v", err)
	}
}
