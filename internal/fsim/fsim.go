// Package fsim is the file-system seam underneath the durability layer
// (internal/wal, internal/colstore persistence, the engine's manifest).
// Production code goes through the FS interface so tests can substitute
// MemFS, a deterministic in-memory file system that models the durable
// versus volatile distinction real disks have: writes land in a volatile
// image, Sync publishes them to the durable image, and Crash() discards
// everything volatile — exactly what a kill -9 does to the page cache.
// MemFS also carries iosim-style failpoints (torn write at byte N, failing
// fsync, bit flips) so crash-matrix tests can cut a write at every byte
// boundary without ever forking a process.
package fsim

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is an open file handle. Write appends at the current position (the
// durability layer only ever writes sequentially); ReadAt serves random
// reads (recovery scans, table loads).
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync makes all writes so far durable.
	Sync() error
	// Size returns the current file size in bytes.
	Size() (int64, error)
}

// FS is the small slice of a file system the durability layer needs.
type FS interface {
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname (both synced files;
	// the rename itself is modeled as durable, matching a journaling FS
	// rename after fsync).
	Rename(oldname, newname string) error
	// Remove deletes name (no error if absent is NOT guaranteed; callers
	// check).
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// List returns the file names under dir (non-recursive, sorted).
	List(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// Exists reports whether name exists.
	Exists(name string) bool
}

// OS is the real file system.
var OS FS = osFS{}

type osFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	// Make the rename durable: fsync the containing directory.
	if d, err := os.Open(filepath.Dir(newname)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Truncate(name string, sz int64) error { return os.Truncate(name, sz) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func (osFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}
