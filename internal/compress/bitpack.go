// Package compress implements the light-weight, CPU-friendly compression
// schemes of the X100 storage layer: PFOR (patched frame-of-reference),
// PFOR-DELTA and PDICT, as described in "Super-Scalar RAM-CPU Cache
// Compression" (Zukowski, Heman, Nes, Boncz; ICDE 2006), plus RLE for
// sorted columns.
//
// The design goal these schemes share — and the reason the paper's storage
// layer could keep a vectorized CPU "I/O balanced" — is that *decompression
// is a tight loop with no data-dependent branches on the hot path*:
// bulk-unpack fixed-width codes, then patch the rare exceptions afterwards.
// General-purpose codecs (gzip/flate) compress better but decode an order
// of magnitude slower; experiment E3 reproduces that trade-off.
package compress

import "encoding/binary"

// Bit packing: n values of width w bits, LSB-first within little-endian
// 64-bit words. Width 0 encodes a column of all-zero deltas in zero bytes.

// packedLen returns the byte length of n packed w-bit values.
func packedLen(n int, w uint) int {
	bits := n * int(w)
	return (bits + 63) / 64 * 8
}

// packBits appends n w-bit values to dst.
func packBits(dst []byte, vals []uint64, w uint) []byte {
	if w == 0 {
		return dst
	}
	var acc uint64
	var nbits uint
	for _, v := range vals {
		acc |= (v & widthMask(w)) << nbits
		nbits += w
		for nbits >= 64 {
			dst = binary.LittleEndian.AppendUint64(dst, acc)
			nbits -= 64
			if nbits > 0 {
				acc = v >> (w - nbits)
			} else {
				acc = 0
			}
		}
	}
	if nbits > 0 {
		dst = binary.LittleEndian.AppendUint64(dst, acc)
	}
	return dst
}

// unpackBits decodes n w-bit values from src into dst[:n].
func unpackBits(dst []uint64, src []byte, n int, w uint) {
	if w == 0 {
		for i := 0; i < n; i++ {
			dst[i] = 0
		}
		return
	}
	mask := widthMask(w)
	var acc uint64
	var nbits uint
	word := 0
	for i := 0; i < n; i++ {
		if nbits < w {
			next := binary.LittleEndian.Uint64(src[word*8:])
			word++
			v := (acc | next<<nbits) & mask
			dst[i] = v
			used := w - nbits
			acc = next >> used
			nbits = 64 - used
			// Keep acc's live bits only; high garbage is masked on use.
		} else {
			dst[i] = acc & mask
			acc >>= w
			nbits -= w
		}
	}
}

func widthMask(w uint) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Zigzag maps signed to unsigned so small-magnitude negatives stay small.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarint helpers for headers.
func putUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

func getUvarint(src []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, nil, false
	}
	return v, src[n:], true
}
