package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTripInt(t *testing.T, enc func([]byte, []int64) []byte, dec func([]int64, []byte) ([]int64, []byte, error), vals []int64) {
	t.Helper()
	buf := enc(nil, vals)
	got, rest, err := dec(nil, buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
	if len(got) != len(vals) {
		t.Fatalf("len %d want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("val[%d] = %d want %d", i, got[i], vals[i])
		}
	}
}

func TestPFORRoundTripBasic(t *testing.T) {
	roundTripInt(t, EncodePFOR, DecodePFOR, []int64{1, 2, 3, 4, 5})
	roundTripInt(t, EncodePFOR, DecodePFOR, []int64{})
	roundTripInt(t, EncodePFOR, DecodePFOR, []int64{42})
	roundTripInt(t, EncodePFOR, DecodePFOR, []int64{-5, -5, -5})
	roundTripInt(t, EncodePFOR, DecodePFOR, []int64{math.MinInt64, math.MaxInt64, 0})
}

func TestPFORExceptions(t *testing.T) {
	// Mostly small values with a few huge outliers: the patched case.
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	vals[17] = 1 << 50
	vals[500] = -(1 << 40)
	vals[999] = math.MaxInt64
	roundTripInt(t, EncodePFOR, DecodePFOR, vals)
	// Compression should still be effective despite outliers.
	buf := EncodePFOR(nil, vals)
	if len(buf) > 8000/4 {
		t.Fatalf("PFOR with outliers too large: %d bytes for 8000 raw", len(buf))
	}
}

func TestPFORDeltaSorted(t *testing.T) {
	vals := make([]int64, 10000)
	acc := int64(1000000)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		acc += rng.Int63n(5)
		vals[i] = acc
	}
	roundTripInt(t, EncodePFORDelta, DecodePFORDelta, vals)
	buf := EncodePFORDelta(nil, vals)
	if len(buf) > 10000 { // <1 byte/value on near-sorted data
		t.Fatalf("PFOR-DELTA on sorted data too large: %d", len(buf))
	}
}

func TestRLE(t *testing.T) {
	roundTripInt(t, EncodeRLE, DecodeRLE, []int64{7, 7, 7, 7, 1, 1, 9})
	roundTripInt(t, EncodeRLE, DecodeRLE, []int64{})
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(i / 1000)
	}
	buf := EncodeRLE(nil, vals)
	if len(buf) > 60 {
		t.Fatalf("RLE on runs too large: %d", len(buf))
	}
	roundTripInt(t, EncodeRLE, DecodeRLE, vals)
}

func TestNoneCodec(t *testing.T) {
	roundTripInt(t, EncodeNone, DecodeNone, []int64{1, -1, math.MaxInt64})
}

func TestChooseInt64(t *testing.T) {
	// Runs → RLE wins.
	runs := make([]int64, 4096)
	for i := range runs {
		runs[i] = int64(i / 512)
	}
	_, codec := ChooseInt64(nil, runs)
	if codec != RLE {
		t.Fatalf("runs chose %v", codec)
	}
	// Sorted with increments → PFOR-DELTA wins.
	sorted := make([]int64, 4096)
	for i := range sorted {
		sorted[i] = int64(i)*3 + 1000000000
	}
	_, codec = ChooseInt64(nil, sorted)
	if codec != PFORDelta {
		t.Fatalf("sorted chose %v", codec)
	}
	// Random small-range → PFOR (delta of random walk is wider).
	rng := rand.New(rand.NewSource(7))
	rnd := make([]int64, 4096)
	for i := range rnd {
		rnd[i] = rng.Int63n(1000)
	}
	buf, codec := ChooseInt64(nil, rnd)
	if codec != PFOR && codec != PFORDelta {
		t.Fatalf("random chose %v", codec)
	}
	got, _, err := DecodeInt64(nil, buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rnd {
		if got[i] != rnd[i] {
			t.Fatal("choose roundtrip mismatch")
		}
	}
}

func TestDecodeInt64Dispatch(t *testing.T) {
	vals := []int64{5, 6, 7}
	for _, enc := range []func([]byte, []int64) []byte{EncodeNone, EncodePFOR, EncodePFORDelta, EncodeRLE} {
		buf := enc(nil, vals)
		got, _, err := DecodeInt64(nil, buf)
		if err != nil || len(got) != 3 || got[2] != 7 {
			t.Fatalf("dispatch: %v %v", got, err)
		}
	}
	if _, _, err := DecodeInt64(nil, []byte{99, 0}); err == nil {
		t.Fatal("bad codec accepted")
	}
	if _, _, err := DecodeInt64(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i * 37)
	}
	buf := EncodePFOR(nil, vals)
	for _, cut := range []int{1, 2, 5, len(buf) / 2, len(buf) - 1} {
		if _, _, err := DecodePFOR(nil, buf[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestStringRaw(t *testing.T) {
	vals := []string{"hello", "", "world", "a\x00b"}
	buf := EncodeStringRaw(nil, vals)
	got, rest, err := DecodeStringRaw(nil, buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("str[%d] = %q", i, got[i])
		}
	}
}

func TestPDictRoundTrip(t *testing.T) {
	vals := make([]string, 2000)
	opts := []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}
	for i := range vals {
		vals[i] = opts[i%len(opts)]
	}
	buf := EncodePDict(nil, vals)
	got, rest, err := DecodePDict(nil, buf)
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("dict[%d] = %q", i, got[i])
		}
	}
	// Low-cardinality column compresses far below raw.
	raw := EncodeStringRaw(nil, vals)
	if len(buf)*4 > len(raw) {
		t.Fatalf("pdict %d vs raw %d: expected >4x", len(buf), len(raw))
	}
}

func TestChooseString(t *testing.T) {
	lowCard := make([]string, 1000)
	for i := range lowCard {
		lowCard[i] = []string{"x", "y"}[i%2]
	}
	buf, codec := ChooseString(nil, lowCard)
	if codec != PDict {
		t.Fatalf("low-card chose %v", codec)
	}
	got, _, err := DecodeString(nil, buf)
	if err != nil || got[1] != "y" {
		t.Fatal("choose string roundtrip")
	}
	// All-distinct long strings: raw wins.
	distinct := make([]string, 100)
	for i := range distinct {
		distinct[i] = string(rune('a'+i%26)) + string(make([]byte, 50))
	}
	// Make them actually distinct.
	for i := range distinct {
		distinct[i] = distinct[i] + string(rune('0'+i%10)) + string(rune('A'+(i/10)%26))
	}
	_, codec = ChooseString(nil, distinct)
	if codec != None {
		t.Fatalf("distinct chose %v", codec)
	}
}

func TestBitPackWidths(t *testing.T) {
	for w := uint(0); w <= 64; w++ {
		n := 100
		vals := make([]uint64, n)
		rng := rand.New(rand.NewSource(int64(w)))
		for i := range vals {
			vals[i] = rng.Uint64() & widthMask(w)
		}
		buf := packBits(nil, vals, w)
		if len(buf) != packedLen(n, w) {
			t.Fatalf("w=%d: packed len %d want %d", w, len(buf), packedLen(n, w))
		}
		out := make([]uint64, n)
		unpackBits(out, buf, n, w)
		for i := range vals {
			if out[i] != vals[i] {
				t.Fatalf("w=%d val[%d]: %x want %x", w, i, out[i], vals[i])
			}
		}
	}
}

// Property: PFOR round-trips arbitrary data.
func TestPFORRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		buf := EncodePFOR(nil, vals)
		got, rest, err := DecodePFOR(nil, buf)
		if err != nil || len(rest) != 0 || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: PFOR-DELTA and RLE round-trip arbitrary data.
func TestDeltaRLERoundTripProperty(t *testing.T) {
	f := func(vals []int64, small []uint8) bool {
		buf := EncodePFORDelta(nil, vals)
		got, _, err := DecodePFORDelta(nil, buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		sv := make([]int64, len(small))
		for i, b := range small {
			sv[i] = int64(b % 4)
		}
		buf2 := EncodeRLE(nil, sv)
		got2, _, err := DecodeRLE(nil, buf2)
		if err != nil || len(got2) != len(sv) {
			return false
		}
		for i := range sv {
			if got2[i] != sv[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: zigzag is a bijection.
func TestZigzagProperty(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPDictRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		buf := EncodePDict(nil, vals)
		got, _, err := DecodePDict(nil, buf)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
