package compress

import "vectorwise/internal/metrics"

// Per-codec decode counters, resolved once so the block-decode hot path
// pays a single atomic add. Indexed by Codec.
var decodeBlocks = func() [PDict + 1]*metrics.Counter {
	var out [PDict + 1]*metrics.Counter
	for c := None; c <= PDict; c++ {
		out[c] = metrics.Default.Counter(`compress_decode_blocks_total{codec="` + c.String() + `"}`)
	}
	return out
}()

// decodeBytes totals the encoded bytes fed to the block decoders.
var decodeBytes = metrics.Default.Counter("compress_decode_bytes_total")

// countDecode records one dispatched block decode.
func countDecode(c Codec, encodedLen int) {
	if c <= PDict {
		decodeBlocks[c].Inc()
	}
	decodeBytes.Add(int64(encodedLen))
}
