package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// PFOR: patched frame-of-reference. Values are encoded as fixed-width
// unsigned offsets from a base (the block minimum). The width is chosen so
// that *most* values fit; the rest — the exceptions — are stored verbatim
// on the side and patched into the output after the branch-free bulk
// unpack. This keeps the decode loop super-scalar even on skewed data,
// which is the scheme's whole point.

// ErrCorrupt reports an undecodable block.
var ErrCorrupt = errors.New("compress: corrupt block")

// Codec identifies a compression scheme in block headers.
type Codec uint8

// The block codecs.
const (
	None Codec = iota
	PFOR
	PFORDelta
	RLE
	PDict
)

// String names the codec.
func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case PFOR:
		return "pfor"
	case PFORDelta:
		return "pfor-delta"
	case RLE:
		return "rle"
	case PDict:
		return "pdict"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// exceptionCost is the approximate per-exception storage cost in bytes
// (position delta + value), used when choosing the code width.
const exceptionCost = 11

// choosePFOR picks (base, width) minimizing estimated block size. Exceptions
// may lie on *either* side of the covered window [base, base+2^w), so a
// single wild outlier — high or low — cannot blow up the frame of
// reference; it just becomes a patched exception. The search slides a
// window of each candidate width over the sorted values (two pointers) to
// find the densest coverage.
func choosePFOR(vals []int64) (int64, uint) {
	n := len(vals)
	sorted := make([]int64, n)
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bestBase, bestW := sorted[0], uint(64)
	bestCost := n * 8 // cost of w=64, no exceptions
	for w := uint(0); w < 64; w++ {
		span := widthMask(w) // max representable offset
		covered, coverIdx := 0, 0
		j := 0
		for i := 0; i < n; i++ {
			if j < i {
				j = i
			}
			for j < n && uint64(sorted[j])-uint64(sorted[i]) <= span {
				j++
			}
			if j-i > covered {
				covered = j - i
				coverIdx = i
			}
			if j == n {
				break
			}
		}
		cost := (n*int(w)+7)/8 + (n-covered)*exceptionCost
		if cost < bestCost {
			bestCost = cost
			bestW = w
			bestBase = sorted[coverIdx]
		}
	}
	return bestBase, bestW
}

// EncodePFOR appends a PFOR block for vals to dst.
//
// Layout: uvarint n | uvarint zigzag(base) | byte width | uvarint nExc |
// packed codes | exceptions (uvarint pos-delta, uvarint zigzag(value))*.
// Exception values are absolute (not offsets), so they can lie below base.
func EncodePFOR(dst []byte, vals []int64) []byte {
	n := len(vals)
	dst = append(dst, byte(PFOR))
	dst = putUvarint(dst, uint64(n))
	if n == 0 {
		return dst
	}
	base, w := choosePFOR(vals)
	dst = putUvarint(dst, zigzag(base))
	dst = append(dst, byte(w))
	// Collect exceptions; their code slots hold 0.
	span := widthMask(w)
	var excPos []int
	codes := make([]uint64, n)
	for i, v := range vals {
		off := uint64(v) - uint64(base)
		if v < base || (w < 64 && off > span) {
			excPos = append(excPos, i)
			codes[i] = 0
		} else {
			codes[i] = off
		}
	}
	dst = putUvarint(dst, uint64(len(excPos)))
	dst = packBits(dst, codes, w)
	prev := 0
	for _, p := range excPos {
		dst = putUvarint(dst, uint64(p-prev))
		prev = p
		dst = putUvarint(dst, zigzag(vals[p]))
	}
	return dst
}

// DecodePFOR decodes a PFOR block into dst (grown as needed) and returns
// the value slice along with the unconsumed remainder of src.
func DecodePFOR(dst []int64, src []byte) ([]int64, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != PFOR {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, src, nil
	}
	baseU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	base := unzigzag(baseU)
	if len(src) < 1 {
		return nil, nil, ErrCorrupt
	}
	w := uint(src[0])
	src = src[1:]
	nExcU, src, ok := getUvarint(src)
	if !ok || w > 64 {
		return nil, nil, ErrCorrupt
	}
	packed := packedLen(n, w)
	if len(src) < packed {
		return nil, nil, ErrCorrupt
	}
	codes := make([]uint64, n)
	unpackBits(codes, src[:packed], n, w)
	src = src[packed:]
	// Branch-free hot loop: base + code.
	for i := 0; i < n; i++ {
		dst[i] = base + int64(codes[i])
	}
	// Patch phase.
	pos := 0
	for e := 0; e < int(nExcU); e++ {
		dp, rest, ok := getUvarint(src)
		if !ok {
			return nil, nil, ErrCorrupt
		}
		v, rest2, ok := getUvarint(rest)
		if !ok {
			return nil, nil, ErrCorrupt
		}
		src = rest2
		pos += int(dp)
		if pos >= n {
			return nil, nil, ErrCorrupt
		}
		dst[pos] = unzigzag(v)
	}
	return dst, src, nil
}

// EncodePFORDelta appends a PFOR-DELTA block: consecutive differences
// compressed with PFOR. Ideal for sorted or clustered columns (keys, dates,
// row IDs).
func EncodePFORDelta(dst []byte, vals []int64) []byte {
	dst = append(dst, byte(PFORDelta))
	dst = putUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	dst = putUvarint(dst, zigzag(vals[0]))
	deltas := make([]int64, len(vals)-1)
	for i := 1; i < len(vals); i++ {
		deltas[i-1] = vals[i] - vals[i-1]
	}
	return EncodePFOR(dst, deltas)
}

// DecodePFORDelta decodes a PFOR-DELTA block.
func DecodePFORDelta(dst []int64, src []byte) ([]int64, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != PFORDelta {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, src, nil
	}
	firstU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	deltas, src, err := DecodePFOR(nil, src)
	if err != nil {
		return nil, nil, err
	}
	if len(deltas) != n-1 {
		return nil, nil, ErrCorrupt
	}
	acc := unzigzag(firstU)
	dst[0] = acc
	for i, d := range deltas {
		acc += d
		dst[i+1] = acc
	}
	return dst, src, nil
}

// EncodeRLE appends a run-length block: (zigzag value, run length) pairs.
func EncodeRLE(dst []byte, vals []int64) []byte {
	dst = append(dst, byte(RLE))
	dst = putUvarint(dst, uint64(len(vals)))
	i := 0
	for i < len(vals) {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		dst = putUvarint(dst, zigzag(vals[i]))
		dst = putUvarint(dst, uint64(j-i))
		i = j
	}
	return dst
}

// DecodeRLE decodes a run-length block.
func DecodeRLE(dst []int64, src []byte) ([]int64, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != RLE {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	at := 0
	for at < n {
		vU, rest, ok := getUvarint(src)
		if !ok {
			return nil, nil, ErrCorrupt
		}
		runU, rest2, ok := getUvarint(rest)
		if !ok {
			return nil, nil, ErrCorrupt
		}
		src = rest2
		v := unzigzag(vU)
		run := int(runU)
		if run <= 0 || at+run > n {
			return nil, nil, ErrCorrupt
		}
		for k := 0; k < run; k++ {
			dst[at+k] = v
		}
		at += run
	}
	return dst, src, nil
}

// EncodeNone appends an uncompressed block of raw little-endian values.
func EncodeNone(dst []byte, vals []int64) []byte {
	dst = append(dst, byte(None))
	dst = putUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// DecodeNone decodes an uncompressed block.
func DecodeNone(dst []int64, src []byte) ([]int64, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != None {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if len(src) < n*8 {
		return nil, nil, ErrCorrupt
	}
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
	return dst, src[n*8:], nil
}

// EncodeInt64 encodes vals with the given codec.
func EncodeInt64(codec Codec, dst []byte, vals []int64) ([]byte, error) {
	switch codec {
	case None:
		return EncodeNone(dst, vals), nil
	case PFOR:
		return EncodePFOR(dst, vals), nil
	case PFORDelta:
		return EncodePFORDelta(dst, vals), nil
	case RLE:
		return EncodeRLE(dst, vals), nil
	default:
		return nil, fmt.Errorf("compress: codec %v cannot encode int64", codec)
	}
}

// DecodeInt64 decodes any integer block by dispatching on its header byte.
func DecodeInt64(dst []int64, src []byte) ([]int64, []byte, error) {
	if len(src) == 0 {
		return nil, nil, ErrCorrupt
	}
	countDecode(Codec(src[0]), len(src))
	switch Codec(src[0]) {
	case None:
		return DecodeNone(dst, src)
	case PFOR:
		return DecodePFOR(dst, src)
	case PFORDelta:
		return DecodePFORDelta(dst, src)
	case RLE:
		return DecodeRLE(dst, src)
	default:
		return nil, nil, ErrCorrupt
	}
}

// ChooseInt64 adaptively encodes vals with every integer codec and keeps the
// smallest encoding — the per-block codec choice the column store makes at
// append time.
func ChooseInt64(dst []byte, vals []int64) ([]byte, Codec) {
	best := EncodePFOR(nil, vals)
	bestCodec := PFOR
	if c := EncodePFORDelta(nil, vals); len(c) < len(best) {
		best, bestCodec = c, PFORDelta
	}
	if c := EncodeRLE(nil, vals); len(c) < len(best) {
		best, bestCodec = c, RLE
	}
	if raw := len(vals)*8 + 10; raw < len(best) {
		best, bestCodec = EncodeNone(nil, vals), None
	}
	return append(dst, best...), bestCodec
}
