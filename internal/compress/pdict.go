package compress

import (
	"sort"
)

// PDICT: dictionary compression for string columns. Distinct values are
// stored once (sorted, for deterministic output and range-predicate
// friendliness); per-row codes are bit-packed at the minimal width. The
// decode hot loop is a gather from the dictionary — no parsing, no
// allocation per value (Go strings share the dictionary's backing).

// EncodeStringRaw appends an uncompressed string block: uvarint count, then
// uvarint length + bytes per value.
func EncodeStringRaw(dst []byte, vals []string) []byte {
	dst = append(dst, byte(None))
	dst = putUvarint(dst, uint64(len(vals)))
	for _, s := range vals {
		dst = putUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// DecodeStringRaw decodes an uncompressed string block.
func DecodeStringRaw(dst []string, src []byte) ([]string, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != None {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if cap(dst) < n {
		dst = make([]string, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		lU, rest, ok := getUvarint(src)
		if !ok || len(rest) < int(lU) {
			return nil, nil, ErrCorrupt
		}
		dst[i] = string(rest[:lU])
		src = rest[lU:]
	}
	return dst, src, nil
}

// EncodePDict appends a dictionary-compressed string block.
//
// Layout: uvarint n | uvarint dictSize | dict entries (uvarint len+bytes) |
// byte codeWidth | packed codes.
func EncodePDict(dst []byte, vals []string) []byte {
	dst = append(dst, byte(PDict))
	dst = putUvarint(dst, uint64(len(vals)))
	if len(vals) == 0 {
		return dst
	}
	// Build the sorted dictionary.
	set := make(map[string]struct{}, len(vals))
	for _, s := range vals {
		set[s] = struct{}{}
	}
	dict := make([]string, 0, len(set))
	for s := range set {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	code := make(map[string]uint64, len(dict))
	for i, s := range dict {
		code[s] = uint64(i)
	}
	dst = putUvarint(dst, uint64(len(dict)))
	for _, s := range dict {
		dst = putUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	w := codeWidth(len(dict))
	dst = append(dst, byte(w))
	codes := make([]uint64, len(vals))
	for i, s := range vals {
		codes[i] = code[s]
	}
	return packBits(dst, codes, w)
}

// DecodePDict decodes a dictionary-compressed string block.
func DecodePDict(dst []string, src []byte) ([]string, []byte, error) {
	if len(src) == 0 || Codec(src[0]) != PDict {
		return nil, nil, ErrCorrupt
	}
	src = src[1:]
	nU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	n := int(nU)
	if cap(dst) < n {
		dst = make([]string, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, src, nil
	}
	dU, src, ok := getUvarint(src)
	if !ok {
		return nil, nil, ErrCorrupt
	}
	dictN := int(dU)
	dict := make([]string, dictN)
	for i := 0; i < dictN; i++ {
		lU, rest, ok := getUvarint(src)
		if !ok || len(rest) < int(lU) {
			return nil, nil, ErrCorrupt
		}
		dict[i] = string(rest[:lU])
		src = rest[lU:]
	}
	if len(src) < 1 {
		return nil, nil, ErrCorrupt
	}
	w := uint(src[0])
	src = src[1:]
	packed := packedLen(n, w)
	if w > 64 || len(src) < packed {
		return nil, nil, ErrCorrupt
	}
	codes := make([]uint64, n)
	unpackBits(codes, src[:packed], n, w)
	for i, c := range codes {
		if int(c) >= dictN {
			return nil, nil, ErrCorrupt
		}
		dst[i] = dict[c]
	}
	return dst, src[packed:], nil
}

func codeWidth(dictSize int) uint {
	w := uint(0)
	for (1 << w) < dictSize {
		w++
	}
	return w
}

// ChooseString adaptively picks PDICT when it beats raw storage.
func ChooseString(dst []byte, vals []string) ([]byte, Codec) {
	d := EncodePDict(nil, vals)
	r := EncodeStringRaw(nil, vals)
	if len(d) < len(r) {
		return append(dst, d...), PDict
	}
	return append(dst, r...), None
}

// DecodeString decodes any string block by dispatching on its header byte.
func DecodeString(dst []string, src []byte) ([]string, []byte, error) {
	if len(src) == 0 {
		return nil, nil, ErrCorrupt
	}
	countDecode(Codec(src[0]), len(src))
	switch Codec(src[0]) {
	case None:
		return DecodeStringRaw(dst, src)
	case PDict:
		return DecodePDict(dst, src)
	default:
		return nil, nil, ErrCorrupt
	}
}
