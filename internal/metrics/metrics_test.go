package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total"); again != c {
		t.Fatal("Counter should return the same instrument for the same name")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	// Bounds are inclusive upper edges.
	for _, v := range []float64{0.5, 1.0} { // bucket le=1
		h.Observe(v)
	}
	h.Observe(1.0001) // bucket le=10
	h.Observe(10)     // bucket le=10
	h.Observe(99.99)  // bucket le=100
	h.Observe(1e9)    // +Inf
	bounds, cum, total := h.Buckets()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	if cum[0] != 2 || cum[1] != 4 || cum[2] != 5 || total != 6 {
		t.Fatalf("cumulative = %v total=%d, want [2 4 5] 6", cum, total)
	}
	wantSum := 0.5 + 1.0 + 1.0001 + 10 + 99.99 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

// TestConcurrentInstruments exercises the registry the way parallel scan
// fragments do: many goroutines resolving and updating the same instruments
// while another goroutine snapshots. Run with -race.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // snapshot-while-writing
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
			}
		}
	}()
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			c := r.Counter("scan_rows_total")
			g := r.Gauge("active")
			h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1})
			for i := 0; i < perWorker; i++ {
				c.Add(3)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%200) / 1000.0)
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	if got := r.Counter("scan_rows_total").Value(); got != workers*perWorker*3 {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker*3)
	}
	if got := r.Gauge("active").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Histogram("lat_seconds", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
	_, cum, total := h.Buckets()
	if cum[len(cum)-1] > total {
		t.Fatalf("cumulative %v exceeds total %d", cum, total)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`exec_rows_total{op="Scan"}`).Add(7)
	r.Counter(`exec_rows_total{op="Select"}`).Add(3)
	r.Gauge("active_queries").Set(2)
	r.Histogram("query_seconds", []float64{0.5, 1}).Observe(0.4)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE exec_rows_total counter",
		`exec_rows_total{op="Scan"} 7`,
		`exec_rows_total{op="Select"} 3`,
		"# TYPE active_queries gauge",
		"active_queries 2",
		"# TYPE query_seconds histogram",
		`query_seconds_bucket{le="0.5"} 1`,
		`query_seconds_bucket{le="+Inf"} 1`,
		"query_seconds_sum 0.4",
		"query_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Exactly one TYPE line per family even with labeled variants.
	if n := strings.Count(out, "# TYPE exec_rows_total"); n != 1 {
		t.Fatalf("want 1 TYPE line for exec_rows_total, got %d", n)
	}
}

func TestSnapshotGet(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(5)
	r.Gauge("b").Set(-2)
	if v, ok := r.Get("a_total"); !ok || v != 5 {
		t.Fatalf("Get(a_total) = %v,%v", v, ok)
	}
	if v, ok := r.Get("b"); !ok || v != -2 {
		t.Fatalf("Get(b) = %v,%v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get(missing) should report absence")
	}
	s := r.Snapshot()
	if len(s) != 2 || s[0].Name != "a_total" || s[1].Name != "b" {
		t.Fatalf("snapshot = %+v", s)
	}
}
