// Package metrics is the engine-wide instrumentation registry: counters,
// gauges and fixed-bucket histograms with lock-free hot paths. Subsystems
// resolve their instruments once (package init or construction time) and
// then update them with single atomic operations, so instrumenting a scan
// loop or a buffer-pool lookup costs one uncontended atomic add.
//
// The registry itself is only locked on instrument creation and snapshot;
// it backs the SQL-visible sys.metrics table, SHOW METRICS, and the
// Prometheus-style /metrics endpoint.
//
// Instrument names follow Prometheus conventions (snake_case, _total for
// counters). A name may carry a label suffix in curly braces — e.g.
// exec_rows_total{op="Scan"} — which the expositor passes through verbatim,
// grouping TYPE lines by the base name.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored to keep
// the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper bucket
// edges in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (≤ ~20); linear scan beats binary search in practice
	// and stays branch-predictable for skewed inputs.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the bucket upper bounds and the cumulative count at each
// bound, plus the total (the +Inf bucket's cumulative count).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64, total int64) {
	bounds = h.bounds
	cumulative = make([]int64, len(h.bounds))
	var acc int64
	for i := range h.bounds {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative, h.count.Load()
}

// DefLatencyBuckets are the default latency bounds, in seconds (100µs to
// 10s, roughly logarithmic).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds named instruments. Get-or-create methods are safe for
// concurrent use; callers should cache the returned pointer.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Default is the process-wide registry the engine's subsystems register
// into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counts[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counts[name]; ok {
		return c
	}
	c = &Counter{}
	r.counts[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
	r.hists[name] = h
	return h
}

// Sample is one flattened metric reading. Histograms expand into one sample
// per bucket (name_bucket{le="…"}) plus name_sum and name_count.
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge", "histogram"
	Value float64
}

// Snapshot returns all instrument readings, sorted by name. It is
// consistent per instrument (atomic loads), not across instruments — the
// usual monitoring contract.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Sample, 0, len(r.counts)+len(r.gauges)+8*len(r.hists))
	for name, c := range r.counts {
		out = append(out, Sample{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Kind: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.hists {
		bounds, cum, total := h.Buckets()
		for i, b := range bounds {
			out = append(out, Sample{
				Name:  fmt.Sprintf("%s_bucket{le=%q}", name, formatBound(b)),
				Kind:  "histogram",
				Value: float64(cum[i]),
			})
		}
		out = append(out, Sample{Name: name + `_bucket{le="+Inf"}`, Kind: "histogram", Value: float64(total)})
		out = append(out, Sample{Name: name + "_sum", Kind: "histogram", Value: h.Sum()})
		out = append(out, Sample{Name: name + "_count", Kind: "histogram", Value: float64(total)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the current value of a named counter or gauge (0, false when
// absent) — convenience for tests and delta accounting.
func (r *Registry) Get(name string) (float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counts[name]; ok {
		return float64(c.Value()), true
	}
	if g, ok := r.gauges[name]; ok {
		return float64(g.Value()), true
	}
	return 0, false
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one TYPE line per metric family, then samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Snapshot()
	// TYPE lines go once per base family, before its first sample.
	typed := map[string]bool{}
	for _, s := range samples {
		base := baseName(s.Name)
		family, kind := base, s.Kind
		if kind == "histogram" {
			family = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(family,
				"_bucket"), "_sum"), "_count")
		}
		if !typed[family] {
			typed[family] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips a {label} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
