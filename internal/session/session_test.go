package session

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vectorwise/internal/engine"
	"vectorwise/internal/exec"
	"vectorwise/internal/types"
)

// poolDB builds an engine with a small multi-group table for end-to-end
// session tests.
func poolDB(t *testing.T, rows int) *engine.DB {
	t.Helper()
	db := engine.Open()
	db.BufferGroups = 4
	if _, err := db.Exec(context.Background(), `CREATE TABLE t (k BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadBatchFunc("t", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 0.25),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// Admission is strictly FIFO: with one slot held, waiters are granted in
// arrival order regardless of scheduling.
func TestAdmissionFIFOOrder(t *testing.T) {
	p := NewPool(engine.Open(), Config{MaxConcurrent: 1, MaxQueue: 32})
	release, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := p.admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			rel()
		}(i)
		// Ensure waiter i is enqueued before i+1 arrives, fixing the
		// expected grant order.
		waitFor(t, "waiter enqueued", func() bool { return p.Stats().Queued == i+1 })
	}
	release()
	wg.Wait()

	want := make([]int, waiters)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	if st := p.Stats(); st.Running != 0 || st.Queued != 0 || st.Reserved != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
}

// The running count never exceeds MaxConcurrent even under a thundering
// herd, and every admit eventually succeeds.
func TestAdmissionBoundsConcurrency(t *testing.T) {
	const maxC, herd = 3, 24
	p := NewPool(engine.Open(), Config{MaxConcurrent: maxC, MaxQueue: herd})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := p.admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > maxC {
		t.Fatalf("observed %d concurrent queries, cap is %d", got, maxC)
	}
}

// The memory budget gates admission below MaxConcurrent when reservations
// don't fit, and frees as queries finish.
func TestAdmissionBudgetReservation(t *testing.T) {
	p := NewPool(engine.Open(), Config{
		MaxConcurrent: 8, MaxQueue: 8, MemBudget: 100, QueryBudget: 40,
	})
	r1, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Reserved != 80 {
		t.Fatalf("reserved = %d, want 80", st.Reserved)
	}
	// A third does not fit (120 > 100): it must queue, not run.
	admitted := make(chan func(), 1)
	go func() {
		rel, err := p.admit(context.Background())
		if err != nil {
			t.Error(err)
		}
		admitted <- rel
	}()
	waitFor(t, "third query queued", func() bool { return p.Stats().Queued == 1 })
	select {
	case <-admitted:
		t.Fatal("third query admitted past the memory budget")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	rel := <-admitted
	rel()
	r2()
	if st := p.Stats(); st.Reserved != 0 || st.Running != 0 {
		t.Fatalf("budget not returned: %+v", st)
	}
}

// Queue overflow rejects instead of blocking.
func TestAdmissionQueueFull(t *testing.T) {
	p := NewPool(engine.Open(), Config{MaxConcurrent: 1, MaxQueue: 1})
	rel, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r, err := p.admit(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		r()
	}()
	waitFor(t, "queue to fill", func() bool { return p.Stats().Queued == 1 })
	if _, err := p.admit(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	rel()
	<-done
}

// A waiter whose context dies leaves the queue cleanly; if the grant raced
// the cancellation, the slot is handed straight back.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	p := NewPool(engine.Open(), Config{MaxConcurrent: 1, MaxQueue: 8})
	rel, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.admit(ctx)
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return p.Stats().Queued == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitFor(t, "queue drained", func() bool { return p.Stats().Queued == 0 })
	rel()
	// The slot must still be grantable after the cancelled waiter left.
	r2, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
	if st := p.Stats(); st.Running != 0 || st.Reserved != 0 {
		t.Fatalf("pool leaked state: %+v", st)
	}
}

// Closing the pool fails queued waiters and future admits with
// ErrPoolClosed.
func TestPoolCloseFailsWaiters(t *testing.T) {
	p := NewPool(engine.Open(), Config{MaxConcurrent: 1, MaxQueue: 8})
	rel, err := p.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := p.admit(context.Background())
		errc <- err
	}()
	waitFor(t, "waiter queued", func() bool { return p.Stats().Queued == 1 })
	p.Close()
	if err := <-errc; !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("waiter err = %v, want ErrPoolClosed", err)
	}
	if _, err := p.admit(context.Background()); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("admit after close = %v, want ErrPoolClosed", err)
	}
	rel()
	if _, err := p.Open(); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("Open after close = %v, want ErrPoolClosed", err)
	}
}

// N+K end-to-end: a pool of 2 serves 8 concurrent aggregation queries —
// every result matches the serial answer, the slot and the budget are fully
// returned, and no goroutines are left behind.
func TestSessionsConcurrentQueriesDrainClean(t *testing.T) {
	const clients = 8
	db := poolDB(t, 60000)
	ctx := context.Background()
	serial, err := db.Exec(ctx, `SELECT COUNT(*), SUM(k) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(db, Config{
		MaxConcurrent: 2, MaxQueue: clients,
		MemBudget: 64 << 20, QueryBudget: 8 << 20,
	})
	base := runtime.NumGoroutine()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := p.Open()
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			res, err := s.Exec(ctx, `SELECT COUNT(*), SUM(k) FROM t WITH (PARALLEL=2)`)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(res.Rows, serial.Rows) {
				t.Errorf("rows %v != serial %v", res.Rows, serial.Rows)
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Running != 0 || st.Queued != 0 || st.Reserved != 0 || st.Sessions != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// A failing query (SQL error or budget blow-up) must release its slot and
// reservation so the pool keeps serving.
func TestFailedQueryReleasesBudget(t *testing.T) {
	db := poolDB(t, 50000)
	p := NewPool(db, Config{
		MaxConcurrent: 1, MaxQueue: 4,
		MemBudget: 4096, QueryBudget: 2048,
	})
	s, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Exec(ctx, `SELECT nope FROM missing`); err == nil {
		t.Fatal("bad SQL succeeded")
	}
	if st := p.Stats(); st.Running != 0 || st.Reserved != 0 {
		t.Fatalf("SQL error leaked admission state: %+v", st)
	}
	// The per-query budget reaches the executor: a full-table sort cannot fit
	// in 2 KiB.
	if _, err := s.Exec(ctx, `SELECT k FROM t ORDER BY v DESC`); !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if st := p.Stats(); st.Running != 0 || st.Reserved != 0 {
		t.Fatalf("budget error leaked admission state: %+v", st)
	}
	// And the pool still serves cheap queries afterwards.
	res, err := s.Exec(ctx, `SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int64() != 50000 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

// The pool feeds sys.sessions: session state is visible from SQL run
// through a session of the same pool.
func TestPoolBacksSysSessions(t *testing.T) {
	db := poolDB(t, 1000)
	p := NewPool(db, Config{MaxConcurrent: 4})
	s1, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := p.Open()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s1.Exec(context.Background(),
		`SELECT id, state FROM sys.sessions ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("sessions = %d, want 2", len(res.Rows))
	}
	// The querying session is active (it is running this very statement).
	if got := res.Rows[0][1].String(); got != "active" {
		t.Fatalf("session 1 state = %q, want active", got)
	}
	if got := res.Rows[1][1].String(); got != "idle" {
		t.Fatalf("session 2 state = %q, want idle", got)
	}
	s2.Close()
	if st := p.Stats(); st.Sessions != 1 {
		t.Fatalf("sessions after close = %d", st.Sessions)
	}
}
