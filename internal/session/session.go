// Package session is the service layer between clients (the vwserver
// front-end, the vwsql shell, embedders) and the engine core: Sessions own
// per-client identity and statement accounting, and a SessionPool performs
// admission control — a bounded number of concurrently running queries, a
// bounded FIFO wait queue, and memory-budget reservation — so heavy
// concurrent traffic degrades by queueing instead of by thrashing.
package session

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
)

// Admission instruments. session_active counts open sessions;
// session_queries_running counts statements currently holding a slot.
var (
	mSessionsActive = metrics.Default.Gauge("session_active")
	mRunning        = metrics.Default.Gauge("session_queries_running")
	mQueued         = metrics.Default.Counter("session_queries_queued_total")
	mRejected       = metrics.Default.Counter("session_queries_rejected_total")
	mAdmitted       = metrics.Default.Counter("session_queries_admitted_total")
)

// Admission errors.
var (
	ErrQueueFull  = errors.New("session: admission queue full")
	ErrPoolClosed = errors.New("session: pool closed")
)

// Config tunes the pool's admission control.
type Config struct {
	// MaxConcurrent is the number of queries allowed to run at once
	// (default 4).
	MaxConcurrent int
	// MaxQueue bounds the FIFO wait queue; arrivals beyond it are rejected
	// with ErrQueueFull (default 16, -1 disables queueing entirely).
	MaxQueue int
	// MemBudget is the total bytes reservable by admitted queries; with
	// QueryBudget it gates admission (0 = unlimited).
	MemBudget int64
	// QueryBudget is each query's materialization cap in bytes, reserved
	// from MemBudget at admission and threaded to the executor (0 = none).
	QueryBudget int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 16
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	return c
}

// waiter is one queued admission request.
type waiter struct {
	ch      chan struct{}
	granted bool // slot handed over before the waiter gave up
	err     error
}

// Pool is the admission controller over one engine.DB. Slots free up in
// completion order but are granted in arrival order (direct hand-off to the
// queue head), so admission is FIFO.
type Pool struct {
	db  *engine.DB
	cfg Config

	mu       sync.Mutex
	running  int
	reserved int64
	waiters  []*waiter
	sessions map[int64]*Session
	nextID   int64
	closed   bool
}

// NewPool builds a pool and registers it as the DB's session source, so
// sys.sessions reflects it.
func NewPool(db *engine.DB, cfg Config) *Pool {
	p := &Pool{db: db, cfg: cfg.withDefaults(), sessions: map[int64]*Session{}}
	db.SessionSource = p.Infos
	return p
}

// DB returns the underlying engine.
func (p *Pool) DB() *engine.DB { return p.db }

// Open starts a new session.
func (p *Pool) Open() (*Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	p.nextID++
	s := &Session{pool: p, id: p.nextID, created: time.Now()}
	p.sessions[s.id] = s
	mSessionsActive.Add(1)
	return s, nil
}

// Close rejects all future work and fails queued waiters. Running queries
// finish on their own.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	for _, w := range p.waiters {
		w.err = ErrPoolClosed
		close(w.ch)
	}
	p.waiters = nil
}

// budgetFitsLocked reports whether one more query's reservation fits.
func (p *Pool) budgetFitsLocked() bool {
	if p.cfg.MemBudget <= 0 || p.cfg.QueryBudget <= 0 {
		return true
	}
	return p.reserved+p.cfg.QueryBudget <= p.cfg.MemBudget
}

// grantLocked hands freed capacity to queue heads, preserving FIFO order.
func (p *Pool) grantLocked() {
	for len(p.waiters) > 0 && p.running < p.cfg.MaxConcurrent && p.budgetFitsLocked() {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.running++
		p.reserved += p.cfg.QueryBudget
		mRunning.Add(1)
		w.granted = true
		close(w.ch)
	}
}

// releaseLocked returns one slot and wakes the queue.
func (p *Pool) releaseLocked() {
	p.running--
	p.reserved -= p.cfg.QueryBudget
	mRunning.Add(-1)
	p.grantLocked()
}

// releaseFunc wraps releaseLocked for callers outside the lock; idempotent
// so error paths can defer it unconditionally.
func (p *Pool) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.releaseLocked()
			p.mu.Unlock()
		})
	}
}

// admit blocks until the query may run (or ctx dies, or the queue is full),
// returning the release that must be called when it finishes.
func (p *Pool) admit(ctx context.Context) (func(), error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	// Fast path: capacity free and nobody queued ahead of us.
	if p.running < p.cfg.MaxConcurrent && len(p.waiters) == 0 && p.budgetFitsLocked() {
		p.running++
		p.reserved += p.cfg.QueryBudget
		mRunning.Add(1)
		p.mu.Unlock()
		mAdmitted.Inc()
		return p.releaseFunc(), nil
	}
	if len(p.waiters) >= p.cfg.MaxQueue {
		p.mu.Unlock()
		mRejected.Inc()
		return nil, ErrQueueFull
	}
	w := &waiter{ch: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	mQueued.Inc()
	select {
	case <-w.ch:
		if w.err != nil {
			return nil, w.err
		}
		mAdmitted.Inc()
		return p.releaseFunc(), nil
	case <-ctx.Done():
		p.mu.Lock()
		if w.granted {
			// The grant raced our cancellation: give the slot straight back.
			p.releaseLocked()
			p.mu.Unlock()
			return nil, ctx.Err()
		}
		for i, x := range p.waiters {
			if x == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Stats is a snapshot of the pool's admission state.
type Stats struct {
	Running  int
	Queued   int
	Reserved int64
	Sessions int
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Running: p.running, Queued: len(p.waiters),
		Reserved: p.reserved, Sessions: len(p.sessions)}
}

// Infos reports every open session for sys.sessions, ordered by id.
func (p *Pool) Infos() []engine.SessionInfo {
	p.mu.Lock()
	sessions := make([]*Session, 0, len(p.sessions))
	for _, s := range p.sessions {
		sessions = append(sessions, s)
	}
	p.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	out := make([]engine.SessionInfo, len(sessions))
	for i, s := range sessions {
		out[i] = s.info()
	}
	return out
}

// Session is one client's handle on the engine: statement accounting plus a
// ticket through the pool's admission control for every query it runs.
type Session struct {
	pool    *Pool
	id      int64
	created time.Time

	mu      sync.Mutex
	queries int64
	active  int64
	waiting int64
	closed  bool
}

// ID returns the session's id (as shown in sys.sessions).
func (s *Session) ID() int64 { return s.id }

// Exec runs one statement through admission control, with the configured
// per-query memory budget attached.
func (s *Session) Exec(ctx context.Context, query string) (*engine.Result, error) {
	return s.run(ctx, func(ctx context.Context) (*engine.Result, error) {
		return s.pool.db.Exec(ctx, query)
	})
}

// ExecScript runs a ';'-separated script under a single admission ticket
// (a client's request is one unit of admitted work), returning the last
// statement's result.
func (s *Session) ExecScript(ctx context.Context, script string) (*engine.Result, error) {
	return s.run(ctx, func(ctx context.Context) (*engine.Result, error) {
		return s.pool.db.ExecScript(ctx, script)
	})
}

// run wraps fn with admission, statement accounting, and the per-query
// memory budget.
func (s *Session) run(ctx context.Context, fn func(context.Context) (*engine.Result, error)) (*engine.Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrPoolClosed
	}
	s.waiting++
	s.mu.Unlock()
	release, err := s.pool.admit(ctx)
	s.mu.Lock()
	s.waiting--
	if err == nil {
		s.queries++
		s.active++
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
		release()
	}()
	if b := s.pool.cfg.QueryBudget; b > 0 {
		ctx = engine.WithQueryBudget(ctx, b)
	}
	return fn(ctx)
}

// Close ends the session (running statements finish; new Execs fail).
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	p := s.pool
	p.mu.Lock()
	if _, ok := p.sessions[s.id]; ok {
		delete(p.sessions, s.id)
		mSessionsActive.Add(-1)
	}
	p.mu.Unlock()
}

func (s *Session) info() engine.SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	state := "idle"
	switch {
	case s.active > 0:
		state = "active"
	case s.waiting > 0:
		state = "queued"
	}
	return engine.SessionInfo{
		ID:       s.id,
		State:    state,
		Queries:  s.queries,
		Active:   s.active,
		Reserved: s.active * s.pool.cfg.QueryBudget,
		AgeMS:    float64(time.Since(s.created).Nanoseconds()) / 1e6,
	}
}
