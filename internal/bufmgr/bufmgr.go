// Package bufmgr is the buffer manager for chunked table storage, with the
// two scan policies the paper contrasts:
//
//   - Normal scans: every scan walks chunks in order through a shared LRU
//     cache. Out-of-phase concurrent scans evict each other's chunks and
//     each effectively re-reads the whole table.
//   - Cooperative Scans (claim C3, VLDB 2007): scans register their chunk
//     interest with an Active Buffer Manager and accept chunks in *any*
//     order. The ABM picks what to load next by relevance (how many scans
//     want a chunk, how close its wanters are to finishing) so one physical
//     read feeds many queries.
//
// Experiment E4 drives both policies over the same simulated disk.
package bufmgr

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"vectorwise/internal/metrics"
)

// Buffer-manager instruments, resolved once; hot paths pay one atomic add.
var (
	mLRUHits      = metrics.Default.Counter("bufmgr_lru_hits_total")
	mLRULoads     = metrics.Default.Counter("bufmgr_lru_loads_total")
	mLRUEvictions = metrics.Default.Counter("bufmgr_lru_evictions_total")
	mCoopAttach   = metrics.Default.Counter("bufmgr_coop_attach_total")
	mCoopHits     = metrics.Default.Counter("bufmgr_coop_shared_hits_total")
	mCoopLoads    = metrics.Default.Counter("bufmgr_coop_loads_total")
	mCoopEvict    = metrics.Default.Counter("bufmgr_coop_evictions_total")
	mCoopActive   = metrics.Default.Gauge("bufmgr_coop_active_scans")
	// coop_shared_loads_total counts physical loads that served two or more
	// attached scans at load time — the reads the cooperative policy turned
	// from per-query into shared I/O.
	mCoopSharedLoads = metrics.Default.Counter("coop_shared_loads_total")
)

// Source supplies chunk data; reads carry the (simulated or real) I/O cost.
type Source interface {
	// NumChunks returns the chunk count of the underlying object.
	NumChunks() int
	// ReadChunk reads one chunk, blocking for its I/O time.
	ReadChunk(ctx context.Context, id int) ([]byte, error)
}

// Stats counts buffer-manager activity.
type Stats struct {
	Loads       int64 // physical chunk reads
	Hits        int64 // chunks served from the pool
	SharedLoads int64 // loads wanted by >= 2 scans at load time (ABM only)
}

// LRUPool is the classic shared buffer pool: capacity slots, least-recently-
// used eviction.
type LRUPool struct {
	mu       sync.Mutex
	src      Source
	capacity int
	items    map[int]*list.Element
	order    *list.List // front = most recent
	stats    Stats
	inflight map[int]chan struct{} // single-flight per chunk
}

type lruEntry struct {
	id   int
	data []byte
}

// NewLRUPool builds a pool of the given capacity (in chunks) over src.
func NewLRUPool(src Source, capacity int) *LRUPool {
	if capacity < 1 {
		panic("bufmgr: pool capacity must be positive")
	}
	return &LRUPool{
		src:      src,
		capacity: capacity,
		items:    make(map[int]*list.Element),
		order:    list.New(),
		inflight: make(map[int]chan struct{}),
	}
}

// Get returns chunk id, loading it on a miss. Concurrent misses on the same
// chunk are collapsed into one physical read (single-flight).
func (p *LRUPool) Get(ctx context.Context, id int) ([]byte, error) {
	for {
		p.mu.Lock()
		if el, ok := p.items[id]; ok {
			p.order.MoveToFront(el)
			data := el.Value.(*lruEntry).data
			p.stats.Hits++
			mLRUHits.Inc()
			p.mu.Unlock()
			return data, nil
		}
		if ch, ok := p.inflight[id]; ok {
			p.mu.Unlock()
			select {
			case <-ch:
				continue // re-check the pool
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		p.inflight[id] = ch
		p.mu.Unlock()

		data, err := p.src.ReadChunk(ctx, id)

		p.mu.Lock()
		delete(p.inflight, id)
		close(ch)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
		p.stats.Loads++
		mLRULoads.Inc()
		p.insertLocked(id, data)
		p.mu.Unlock()
		return data, nil
	}
}

func (p *LRUPool) insertLocked(id int, data []byte) {
	if el, ok := p.items[id]; ok {
		p.order.MoveToFront(el)
		el.Value.(*lruEntry).data = data
		return
	}
	for len(p.items) >= p.capacity {
		back := p.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*lruEntry)
		p.order.Remove(back)
		delete(p.items, victim.id)
		mLRUEvictions.Inc()
	}
	p.items[id] = p.order.PushFront(&lruEntry{id: id, data: data})
}

// Stats returns a snapshot of the counters.
func (p *LRUPool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Contains reports whether the chunk is currently resident (tests).
func (p *LRUPool) Contains(id int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.items[id]
	return ok
}

// NormalScan iterates chunks 0..N-1 in order through an LRU pool: the
// traditional scan the paper's Cooperative Scans improve upon.
type NormalScan struct {
	pool *LRUPool
	next int
	n    int
}

// NewNormalScan starts an in-order scan over all chunks of the source.
func NewNormalScan(pool *LRUPool) *NormalScan {
	return &NormalScan{pool: pool, n: pool.src.NumChunks()}
}

// Next returns the next chunk in order, or ok=false at the end.
func (s *NormalScan) Next(ctx context.Context) (id int, data []byte, ok bool, err error) {
	if s.next >= s.n {
		return 0, nil, false, nil
	}
	id = s.next
	s.next++
	data, err = s.pool.Get(ctx, id)
	if err != nil {
		return 0, nil, false, err
	}
	return id, data, true, nil
}

// String renders pool stats for debugging.
func (s Stats) String() string {
	return fmt.Sprintf("loads=%d hits=%d", s.Loads, s.Hits)
}
