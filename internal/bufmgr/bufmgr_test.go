package bufmgr

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/iosim"
)

// memSource is a Source over a simulated disk with recognizable chunk
// contents.
type memSource struct {
	disk   *iosim.Disk
	chunks int
	size   int
}

func (m *memSource) NumChunks() int { return m.chunks }

func (m *memSource) ReadChunk(ctx context.Context, id int) ([]byte, error) {
	if err := m.disk.Read(ctx, m.size); err != nil {
		return nil, err
	}
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(id))
	return b, nil
}

func fastSource(chunks int) *memSource {
	return &memSource{disk: iosim.NewDisk(0, 0), chunks: chunks, size: 1 << 20}
}

func TestLRUPoolHitsAndEviction(t *testing.T) {
	src := fastSource(10)
	p := NewLRUPool(src, 3)
	ctx := context.Background()
	for _, id := range []int{0, 1, 2} {
		if _, err := p.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Get(ctx, 1); err != nil { // hit
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Loads != 3 || st.Hits != 1 {
		t.Fatalf("stats: %v", st)
	}
	// Insert a 4th chunk: LRU (chunk 0) is evicted.
	if _, err := p.Get(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if p.Contains(0) {
		t.Fatal("chunk 0 should have been evicted")
	}
	if !p.Contains(1) || !p.Contains(2) || !p.Contains(3) {
		t.Fatal("wrong residents")
	}
}

func TestLRUPoolSingleFlight(t *testing.T) {
	src := &memSource{disk: iosim.NewDisk(5*time.Millisecond, 0), chunks: 1, size: 1}
	p := NewLRUPool(src, 2)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Get(context.Background(), 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Loads != 1 {
		t.Fatalf("single-flight broken: %d loads", st.Loads)
	}
}

func TestNormalScanOrder(t *testing.T) {
	p := NewLRUPool(fastSource(5), 2)
	s := NewNormalScan(p)
	ctx := context.Background()
	var got []int
	for {
		id, data, ok, err := s.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if binary.LittleEndian.Uint64(data) != uint64(id) {
			t.Fatal("wrong chunk content")
		}
		got = append(got, id)
	}
	if len(got) != 5 {
		t.Fatalf("scanned %v", got)
	}
	for i, id := range got {
		if id != i {
			t.Fatalf("order: %v", got)
		}
	}
}

func TestCoopScanDeliversAll(t *testing.T) {
	a := NewABM(fastSource(8), 4)
	s := a.Attach()
	ctx := context.Background()
	seen := map[int]bool{}
	for {
		id, data, ok, err := s.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[id] {
			t.Fatalf("chunk %d delivered twice", id)
		}
		if binary.LittleEndian.Uint64(data) != uint64(id) {
			t.Fatal("wrong content")
		}
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("delivered %d/8", len(seen))
	}
}

func TestCoopScanRange(t *testing.T) {
	a := NewABM(fastSource(10), 4)
	s := a.AttachRange(3, 6)
	ctx := context.Background()
	seen := map[int]bool{}
	for {
		id, _, ok, err := s.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[id] = true
	}
	if len(seen) != 3 || !seen[3] || !seen[4] || !seen[5] {
		t.Fatalf("range scan saw %v", seen)
	}
}

// The headline cooperative-scans property: N out-of-phase concurrent scans
// over the same table should need far fewer physical loads under the ABM
// than under LRU attach. Phase offsets are deterministic: scan i starts
// only after scan i-1 has consumed more chunks than the pool holds, the
// known worst case for in-order LRU scans.
func TestCooperativeSharingBeatsLRU(t *testing.T) {
	const chunks, poolCap, nScans = 32, 8, 4
	const offset = poolCap + 4 // chunks consumed before the next scan starts
	ctx := context.Background()
	run := func(coop bool) int64 {
		disk := iosim.NewDisk(100*time.Microsecond, 0)
		src := &memSource{disk: disk, chunks: chunks, size: 1 << 20}
		var wg sync.WaitGroup
		progress := make([]chan struct{}, nScans) // closed when scan i passes offset
		for i := range progress {
			progress[i] = make(chan struct{})
		}
		var loads func() int64
		var next func(i int) func() bool // returns "one step" function per scan
		if coop {
			a := NewABM(src, poolCap)
			loads = func() int64 { return a.Stats().Loads }
			next = func(i int) func() bool {
				s := a.Attach()
				return func() bool {
					_, _, ok, err := s.Next(ctx)
					return err == nil && ok
				}
			}
		} else {
			p := NewLRUPool(src, poolCap)
			loads = func() int64 { return p.Stats().Loads }
			next = func(i int) func() bool {
				s := NewNormalScan(p)
				return func() bool {
					_, _, ok, err := s.Next(ctx)
					return err == nil && ok
				}
			}
		}
		for i := 0; i < nScans; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i > 0 {
					<-progress[i-1]
				}
				step := next(i)
				consumed := 0
				released := false
				for step() {
					consumed++
					if consumed == offset && !released {
						close(progress[i])
						released = true
					}
				}
				if !released {
					close(progress[i])
				}
			}(i)
		}
		wg.Wait()
		return loads()
	}
	lruLoads := run(false)
	coopLoads := run(true)
	t.Logf("LRU loads=%d, cooperative loads=%d (table=%d chunks, %d scans)",
		lruLoads, coopLoads, chunks, nScans)
	if coopLoads >= lruLoads {
		t.Fatalf("cooperative (%d) should beat LRU (%d)", coopLoads, lruLoads)
	}
	// LRU out-of-phase degrades toward nScans full table reads.
	if lruLoads < int64(2*chunks) {
		t.Fatalf("LRU loads %d suspiciously low; phasing broken?", lruLoads)
	}
}

func TestCoopScanCancellation(t *testing.T) {
	disk := iosim.NewDisk(50*time.Millisecond, 0)
	src := &memSource{disk: disk, chunks: 100, size: 1}
	a := NewABM(src, 4)
	s := a.Attach()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		for {
			_, _, ok, err := s.Next(ctx)
			if err != nil {
				done <- err
				return
			}
			if !ok {
				done <- nil
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected cancellation error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not interrupt the scan")
	}
}

func TestLRUGetCancellation(t *testing.T) {
	disk := iosim.NewDisk(time.Hour, 0) // never completes
	src := &memSource{disk: disk, chunks: 1, size: 1}
	p := NewLRUPool(src, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := p.Get(ctx, 0); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestDiskStats(t *testing.T) {
	d := iosim.NewDisk(time.Millisecond, 1<<30)
	_ = d.Read(context.Background(), 1<<20)
	reads, bytes, busy := d.Stats()
	if reads != 1 || bytes != 1<<20 || busy <= 0 {
		t.Fatalf("stats: %d %d %v", reads, bytes, busy)
	}
	d.ResetStats()
	reads, _, _ = d.Stats()
	if reads != 0 {
		t.Fatal("reset failed")
	}
}
