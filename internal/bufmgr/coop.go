package bufmgr

import (
	"context"
	"sync"
)

// ABM is the Active Buffer Manager implementing Cooperative Scans. Scans
// attach with the set of chunks they need and call Next() until done; the
// ABM hands each scan *whatever relevant chunk is resident*, and when
// nothing resident is relevant it loads the chunk with the highest global
// relevance:
//
//	relevance(c) = (number of attached scans still needing c,
//	                urgency of the neediest: scans closer to completion win,
//	                lower chunk id)
//
// Eviction removes the resident chunk needed by the fewest scans. The net
// effect the paper describes: one physical read of a hot chunk satisfies
// every concurrent query, so total I/O grows with the table, not with the
// number of queries.
type ABM struct {
	mu    sync.Mutex
	cond  *sync.Cond
	src   Source
	cap   int
	cache map[int][]byte
	scans map[*CoopScan]struct{}
	// loading marks a chunk currently being read so other consumers wait
	// instead of issuing a duplicate read.
	loading map[int]bool
	stats   Stats
}

// NewABM builds a cooperative buffer manager with the given chunk capacity.
func NewABM(src Source, capacity int) *ABM {
	if capacity < 1 {
		panic("bufmgr: ABM capacity must be positive")
	}
	a := &ABM{
		src:     src,
		cap:     capacity,
		cache:   make(map[int][]byte),
		scans:   make(map[*CoopScan]struct{}),
		loading: make(map[int]bool),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// CoopScan is one attached scan.
type CoopScan struct {
	abm    *ABM
	needed map[int]bool
	left   int
}

// Attach registers a scan over all chunks of the source.
func (a *ABM) Attach() *CoopScan {
	return a.AttachRange(0, a.src.NumChunks())
}

// AttachRange registers a scan over chunks [lo, hi).
func (a *ABM) AttachRange(lo, hi int) *CoopScan {
	s := &CoopScan{abm: a, needed: make(map[int]bool, hi-lo), left: hi - lo}
	for c := lo; c < hi; c++ {
		s.needed[c] = true
	}
	a.mu.Lock()
	a.scans[s] = struct{}{}
	a.mu.Unlock()
	mCoopAttach.Inc()
	mCoopActive.Add(1)
	return s
}

// Detach removes the scan (also called implicitly when it finishes or when
// Next fails). Idempotent; always wakes waiters so nobody blocks on the
// departed scan's interest set.
func (s *CoopScan) Detach() {
	a := s.abm
	a.mu.Lock()
	a.detachLocked(s)
	a.mu.Unlock()
}

func (a *ABM) detachLocked(s *CoopScan) {
	if _, attached := a.scans[s]; attached {
		delete(a.scans, s)
		mCoopActive.Add(-1)
	}
	a.cond.Broadcast()
}

// Remaining returns how many chunks the scan still needs.
func (s *CoopScan) Remaining() int {
	a := s.abm
	a.mu.Lock()
	defer a.mu.Unlock()
	return s.left
}

// Next delivers any not-yet-consumed chunk to the scan — in whatever order
// benefits the system — or ok=false when the scan has consumed everything.
func (s *CoopScan) Next(ctx context.Context) (id int, data []byte, ok bool, err error) {
	a := s.abm
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			// A cancelled scan must leave the ABM: a lingering attachment
			// would keep inflating chunk relevance and pinning residents
			// against eviction for the rest of the manager's life.
			a.detachLocked(s)
			return 0, nil, false, err
		}
		if s.left == 0 {
			a.detachLocked(s)
			return 0, nil, false, nil
		}
		// 1. Deliver a resident relevant chunk.
		for c := range s.needed {
			if d, resident := a.cache[c]; resident {
				s.consumeLocked(c)
				a.stats.Hits++
				mCoopHits.Inc()
				return c, d, true, nil
			}
		}
		// 2. Nothing resident is relevant: load the globally best chunk
		// among this scan's needs, unless someone is already loading one we
		// need (then wait for it).
		waitFor := -1
		for c := range s.needed {
			if a.loading[c] {
				waitFor = c
				break
			}
		}
		if waitFor >= 0 {
			a.waitCancellable(ctx)
			continue
		}
		c := a.pickLoadLocked(s)
		a.loading[c] = true
		a.mu.Unlock()
		d, err := a.src.ReadChunk(ctx, c)
		a.mu.Lock()
		delete(a.loading, c)
		if err != nil {
			a.detachLocked(s)
			return 0, nil, false, err
		}
		a.stats.Loads++
		mCoopLoads.Inc()
		if a.wantersLocked(c) >= 2 {
			a.stats.SharedLoads++
			mCoopSharedLoads.Inc()
		}
		a.insertLocked(c, d)
		a.cond.Broadcast()
		// Loop back: the loaded chunk is now resident and relevant.
	}
}

// waitCancellable blocks on the condvar but wakes up on ctx cancellation.
func (a *ABM) waitCancellable(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// Take the mutex before broadcasting: the caller holds it until
			// cond.Wait actually parks, so locking here guarantees the
			// broadcast cannot fire in the window before the wait begins (a
			// missed wakeup that would strand a cancelled scan forever).
			a.mu.Lock()
			a.cond.Broadcast()
			a.mu.Unlock()
		case <-done:
		}
	}()
	a.cond.Wait()
	close(done)
}

// wantersLocked counts the attached scans that still need chunk c.
func (a *ABM) wantersLocked(c int) int {
	want := 0
	for sc := range a.scans {
		if sc.needed[c] {
			want++
		}
	}
	return want
}

// pickLoadLocked chooses the next chunk to read on behalf of scan s: the
// chunk (from s's needs) wanted by the most scans; ties go to the chunk
// whose neediest wanter has the fewest chunks left (finish queries early),
// then to the lowest id (sequential-friendly).
func (a *ABM) pickLoadLocked(s *CoopScan) int {
	best := -1
	bestWant, bestUrgency := -1, 1<<62
	for c := range s.needed {
		if a.cache[c] != nil || a.loading[c] {
			continue
		}
		want := 0
		urgency := 1 << 62
		for sc := range a.scans {
			if sc.needed[c] {
				want++
				if sc.left < urgency {
					urgency = sc.left
				}
			}
		}
		if want > bestWant || (want == bestWant && urgency < bestUrgency) ||
			(want == bestWant && urgency == bestUrgency && c < best) {
			best, bestWant, bestUrgency = c, want, urgency
		}
	}
	if best < 0 {
		// All of s's needs are resident or loading; pick any needed chunk
		// (the caller loops and will find it in cache).
		for c := range s.needed {
			return c
		}
	}
	return best
}

// insertLocked adds a chunk, evicting the least-relevant resident chunk if
// the pool is full: fewest scans needing it wins eviction.
func (a *ABM) insertLocked(id int, data []byte) {
	for len(a.cache) >= a.cap {
		victim, victimWant := -1, 1<<62
		for c := range a.cache {
			if c == id {
				continue
			}
			want := 0
			for sc := range a.scans {
				if sc.needed[c] {
					want++
				}
			}
			if want < victimWant {
				victim, victimWant = c, want
			}
			if want == 0 {
				break
			}
		}
		if victim < 0 {
			break
		}
		delete(a.cache, victim)
		mCoopEvict.Inc()
	}
	a.cache[id] = data
}

func (s *CoopScan) consumeLocked(c int) {
	delete(s.needed, c)
	s.left--
}

// Stats returns a snapshot of ABM counters.
func (a *ABM) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}
