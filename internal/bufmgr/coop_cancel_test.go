package bufmgr

import (
	"context"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/iosim"
)

// A context-cancelled CoopScan must detach itself: a lingering attachment
// would keep inflating chunk relevance and pinning residents forever. Run
// cancelled victims interleaved with healthy siblings (under -race in CI)
// and require that everyone unwinds and the scan set drains to zero.
func TestCoopCancelDetachesAndReleasesSiblings(t *testing.T) {
	disk := iosim.NewDisk(2*time.Millisecond, 0)
	src := &memSource{disk: disk, chunks: 32, size: 1}
	a := NewABM(src, 4)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// Healthy siblings scan to completion on a live context.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := a.Attach()
			for {
				_, _, ok, err := s.Next(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
			}
		}()
	}
	// Victims get cancelled mid-flight.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := a.Attach()
			for {
				_, _, ok, err := s.Next(ctx)
				if err != nil || !ok {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	cancel()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scans did not unwind after cancellation (waiter stuck?)")
	}

	a.mu.Lock()
	attached := len(a.scans)
	a.mu.Unlock()
	if attached != 0 {
		t.Fatalf("%d scans still attached after completion/cancellation", attached)
	}
}

// Detach after a cancelled Next (the engine path always defers Detach) must
// be a harmless no-op, and a scan abandoned by a read error must likewise
// leave the ABM.
func TestCoopDetachIdempotentAfterError(t *testing.T) {
	disk := iosim.NewDisk(time.Hour, 0) // reads never complete
	src := &memSource{disk: disk, chunks: 4, size: 1}
	a := NewABM(src, 4)
	s := a.Attach()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, _, err := s.Next(ctx); err == nil {
		t.Fatal("expected cancellation error")
	}
	s.Detach()
	s.Detach()
	a.mu.Lock()
	attached := len(a.scans)
	a.mu.Unlock()
	if attached != 0 {
		t.Fatalf("%d scans still attached", attached)
	}
}

// Two in-phase scans: every physical load is wanted by both at load time, so
// SharedLoads must count them.
func TestCoopSharedLoadsCounted(t *testing.T) {
	src := fastSource(6)
	a := NewABM(src, 6)
	s1, s2 := a.Attach(), a.Attach()
	ctx := context.Background()
	for {
		_, _, ok1, err := s1.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		_, _, ok2, err := s2.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok1 && !ok2 {
			break
		}
	}
	st := a.Stats()
	if st.SharedLoads == 0 {
		t.Fatalf("no shared loads counted: %+v", st)
	}
	if st.SharedLoads > st.Loads {
		t.Fatalf("shared loads %d exceed total loads %d", st.SharedLoads, st.Loads)
	}
}
