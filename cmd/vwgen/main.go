// vwgen writes the TPC-H-like tables (lineitem, orders, customer) as CSV
// files ready for COPY ... FROM.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"vectorwise/internal/datagen"
	"vectorwise/internal/types"
)

func main() {
	sf := flag.Float64("sf", 0.01, "scale factor (1.0 ≈ 6M lineitems)")
	dir := flag.String("dir", ".", "output directory")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	write("lineitem", *dir, func(emit func([]types.Value) error) error {
		return datagen.Lineitems(*sf, *seed, emit)
	})
	write("orders", *dir, func(emit func([]types.Value) error) error {
		return datagen.Orders(*sf, *seed, emit)
	})
	write("customer", *dir, func(emit func([]types.Value) error) error {
		return datagen.Customers(*sf, *seed, emit)
	})
}

func write(name, dir string, gen func(func([]types.Value) error) error) {
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	w := csv.NewWriter(bw)
	n := 0
	rec := []string{}
	err = gen(func(row []types.Value) error {
		rec = rec[:0]
		for _, v := range row {
			if v.Null {
				rec = append(rec, "")
			} else {
				rec = append(rec, v.String())
			}
		}
		n++
		return w.Write(rec)
	})
	if err != nil {
		log.Fatal(err)
	}
	w.Flush()
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d rows → %s\n", name, n, path)
}
