// vwserver is the engine's TCP front-end: one session per connection,
// statements terminated by ';', responses framed by internal/wire. The
// session pool throttles concurrent queries (admission control + memory
// budgets) while cooperative scans share physical reads between
// connections hitting the same table.
//
// Try it:
//
//	vwserver -listen :5433 -init schema.sql &
//	vwsql -connect :5433
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vectorwise/internal/debughttp"
	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/session"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5433", "address to listen on")
	dataDir := flag.String("data-dir", "", "durable data directory with WAL and checkpoints (empty = in-memory)")
	idleSec := flag.Int("idle-timeout-sec", 0, "close connections idle longer than this many seconds (0 disables)")
	pool := flag.Int("pool", 4, "max queries running concurrently")
	queue := flag.Int("queue", 16, "max queries queued for admission (-1 disables queueing)")
	memBudgetMB := flag.Int64("mem-budget-mb", 0, "total query-memory budget in MiB (0 = unlimited)")
	queryBudgetMB := flag.Int64("query-budget-mb", 0, "per-query memory budget in MiB (0 = unlimited)")
	parallel := flag.Int("parallel", 0, "default degree of parallelism per query")
	bufferGroups := flag.Int("buffer-groups", 0, "shared buffer-pool capacity in row groups (0 = default)")
	coop := flag.Bool("coop", true, "cooperative scans for concurrent readers of a table")
	initScript := flag.String("init", "", "SQL script to execute before accepting connections")
	drainSec := flag.Int("drain-timeout-sec", 10, "graceful-shutdown drain timeout in seconds")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (off when empty)")
	slowMs := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds (0 disables)")
	flag.Parse()

	var db *engine.DB
	if *dataDir != "" {
		var info *engine.RecoveryInfo
		var err error
		db, info, err = engine.OpenDir(*dataDir)
		if err != nil {
			log.Fatalf("vwserver: open %s: %v", *dataDir, err)
		}
		log.Printf("vwserver: %s: %s", *dataDir, info.Summary())
	} else {
		db = engine.Open()
	}
	db.Parallel = *parallel
	db.CoopScans = *coop
	if *bufferGroups > 0 {
		db.BufferGroups = *bufferGroups
	}
	if *slowMs > 0 {
		db.Monitor.SetSlowThreshold(time.Duration(*slowMs) * time.Millisecond)
	}
	if *initScript != "" {
		text, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatalf("vwserver: %v", err)
		}
		if _, err := db.ExecScript(context.Background(), string(text)); err != nil {
			log.Fatalf("vwserver: init script: %v", err)
		}
	}
	if *debugAddr != "" {
		debughttp.Serve(*debugAddr, metrics.Default, db.Monitor)
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /queries, /debug/pprof)\n", *debugAddr)
	}

	p := session.NewPool(db, session.Config{
		MaxConcurrent: *pool,
		MaxQueue:      *queue,
		MemBudget:     *memBudgetMB << 20,
		QueryBudget:   *queryBudgetMB << 20,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("vwserver: %v", err)
	}
	srv := newServer(p, ln)
	srv.idleTimeout = time.Duration(*idleSec) * time.Second
	log.Printf("vwserver listening on %s (pool=%d queue=%d coop=%v)",
		ln.Addr(), *pool, *queue, *coop)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.serve() }()
	select {
	case <-sig:
		log.Printf("vwserver: shutting down (drain %ds)", *drainSec)
		srv.shutdown(time.Duration(*drainSec) * time.Second)
		// Close the WAL only after the pool has drained every session.
		if err := db.Close(); err != nil {
			log.Fatalf("vwserver: close: %v", err)
		}
	case err := <-errc:
		if err != nil {
			log.Fatalf("vwserver: %v", err)
		}
	}
}
