package main

import (
	"bufio"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/session"
	"vectorwise/internal/wire"
)

// mIdleClosed counts connections the server closed because they sat idle
// past -idle-timeout-sec without sending a statement.
var mIdleClosed = metrics.Default.Counter("session_idle_closed_total")

// server accepts TCP connections and runs one Session per connection.
// Statements arrive as plain SQL text terminated by ';' (the wire package
// documents the framing); queries from different connections run
// concurrently, throttled by the pool's admission control.
type server struct {
	pool *session.Pool
	ln   net.Listener

	// ctx is the lifetime of queries; cancelled only when a drain deadline
	// forces shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	// idleTimeout, when positive, closes connections that send no bytes
	// for that long; each close bumps session_idle_closed_total.
	idleTimeout time.Duration

	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing bool
}

// idleConn arms a fresh read deadline before every Read so the idle clock
// restarts whenever the client sends anything.
type idleConn struct {
	net.Conn
	timeout time.Duration
}

func (c *idleConn) Read(p []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func newServer(pool *session.Pool, ln net.Listener) *server {
	ctx, cancel := context.WithCancel(context.Background())
	return &server{pool: pool, ln: ln, ctx: ctx, cancel: cancel,
		conns: map[net.Conn]struct{}{}}
}

// serve runs the accept loop until the listener closes. Returns nil when
// the close was a shutdown, the accept error otherwise.
func (s *server) serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// shutdown stops accepting, waits up to drain for connections to finish,
// then aborts running queries and force-closes what remains. Safe to call
// once; blocks until every handler has exited.
func (s *server) shutdown(drain time.Duration) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return
	}
	s.closing = true
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
		s.cancel()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.pool.Close()
}

// handle serves one connection: open a session, loop statements, frame
// responses.
func (s *server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	w := bufio.NewWriter(conn)
	sess, err := s.pool.Open()
	if err != nil {
		wire.WriteResponse(w, err.Error(), "")
		return
	}
	defer sess.Close()

	var rd io.Reader = conn
	if s.idleTimeout > 0 {
		rd = &idleConn{Conn: conn, timeout: s.idleTimeout}
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			if trimmed == "" {
				continue
			}
			if trimmed == `\q` || trimmed == `\quit` {
				return
			}
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		script := buf.String()
		buf.Reset()
		res, err := sess.ExecScript(s.ctx, script)
		var errMsg, body string
		if err != nil {
			errMsg = err.Error()
		} else if res != nil {
			body = engine.FormatResult(res)
		}
		if werr := wire.WriteResponse(w, errMsg, body); werr != nil {
			return
		}
	}
	if ne, ok := sc.Err().(net.Error); ok && ne.Timeout() {
		mIdleClosed.Inc()
	}
}
