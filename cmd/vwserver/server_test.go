package main

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/engine"
	"vectorwise/internal/session"
	"vectorwise/internal/types"
	"vectorwise/internal/wire"
)

// startServer boots a server on a loopback port over a table with rows
// rows, returning the dial address and a shutdown func. Optional mut
// hooks tweak the server before the accept loop starts.
func startServer(t *testing.T, rows int, cfg session.Config, mut ...func(*server)) (string, *server) {
	t.Helper()
	db := engine.Open()
	db.BufferGroups = 4
	if _, err := db.Exec(t.Context(), `CREATE TABLE t (k BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadBatchFunc("t", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 0.5),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p := session.NewPool(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(p, ln)
	for _, m := range mut {
		m(srv)
	}
	go srv.serve()
	return ln.Addr().String(), srv
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func dialClient(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// query sends one statement and reads the framed response.
func (c *client) query(sql string) (string, string, error) {
	if _, err := fmt.Fprintln(c.w, sql); err != nil {
		return "", "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", "", err
	}
	return wire.ReadResponse(c.r)
}

func (c *client) close() { c.conn.Close() }

func TestServerSingleClient(t *testing.T) {
	addr, srv := startServer(t, 10000, session.Config{MaxConcurrent: 2})
	defer srv.shutdown(time.Second)
	c := dialClient(t, addr)
	defer c.close()

	body, serverErr, err := c.query(`SELECT COUNT(*), SUM(k) FROM t;`)
	if err != nil || serverErr != "" {
		t.Fatalf("query failed: %v / %q", err, serverErr)
	}
	if !strings.Contains(body, "10000") || !strings.Contains(body, "49995000") {
		t.Fatalf("unexpected body:\n%s", body)
	}

	// Errors come back framed, and the connection keeps working after.
	_, serverErr, err = c.query(`SELECT nope FROM missing;`)
	if err != nil {
		t.Fatal(err)
	}
	if serverErr == "" {
		t.Fatal("bad SQL produced no server error")
	}
	body, serverErr, err = c.query(`SELECT COUNT(*) FROM t;`)
	if err != nil || serverErr != "" || !strings.Contains(body, "10000") {
		t.Fatalf("connection broken after error: %v %q\n%s", err, serverErr, body)
	}
}

func TestServerMultilineStatement(t *testing.T) {
	addr, srv := startServer(t, 1000, session.Config{MaxConcurrent: 2})
	defer srv.shutdown(time.Second)
	c := dialClient(t, addr)
	defer c.close()
	for _, line := range []string{"SELECT", "  COUNT(*)", "FROM t"} {
		fmt.Fprintln(c.w, line)
	}
	body, serverErr, err := c.query(";")
	if err != nil || serverErr != "" {
		t.Fatalf("multiline failed: %v / %q", err, serverErr)
	}
	if !strings.Contains(body, "1000") {
		t.Fatalf("body:\n%s", body)
	}
}

// Four concurrent clients hammer the same table through a pool of 2:
// results all match, the pool drains, and no handler goroutines leak
// after shutdown.
func TestServerConcurrentClients(t *testing.T) {
	const clients, reps = 4, 3
	addr, srv := startServer(t, 60000, session.Config{
		MaxConcurrent: 2, MaxQueue: 8, MemBudget: 64 << 20, QueryBudget: 8 << 20,
	})
	base := runtime.NumGoroutine()

	// The serial answer, through its own connection.
	ref := dialClient(t, addr)
	want, serverErr, err := ref.query(`SELECT COUNT(*), SUM(k), SUM(v) FROM t;`)
	if err != nil || serverErr != "" {
		t.Fatalf("ref query: %v / %q", err, serverErr)
	}
	ref.close()

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialClient(t, addr)
			defer c.close()
			for r := 0; r < reps; r++ {
				body, serverErr, err := c.query(
					`SELECT COUNT(*), SUM(k), SUM(v) FROM t WITH (PARALLEL=2);`)
				if err != nil || serverErr != "" {
					t.Errorf("client %d rep %d: %v / %q", i, r, err, serverErr)
					return
				}
				if body != want {
					t.Errorf("client %d rep %d:\n%s\nwant:\n%s", i, r, body, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// sys.sessions is visible over the wire while a connection is open.
	c := dialClient(t, addr)
	body, serverErr, err := c.query(`SELECT COUNT(*) FROM sys.sessions;`)
	if err != nil || serverErr != "" || !strings.Contains(body, "1") {
		t.Fatalf("sys.sessions over the wire: %v %q\n%s", err, serverErr, body)
	}
	c.close()

	srv.shutdown(2 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Fatalf("goroutines leaked: %d > baseline %d", n, base)
	}
	if st := srv.pool.Stats(); st.Running != 0 || st.Queued != 0 || st.Sessions != 0 {
		t.Fatalf("pool not drained after shutdown: %+v", st)
	}
}

// An idle timeout closes quiet connections server-side and counts them in
// session_idle_closed_total; active connections are unaffected because the
// deadline re-arms on every read.
func TestServerIdleTimeout(t *testing.T) {
	addr, srv := startServer(t, 100, session.Config{MaxConcurrent: 1},
		func(s *server) { s.idleTimeout = 200 * time.Millisecond })
	defer srv.shutdown(time.Second)
	before := mIdleClosed.Value()

	c := dialClient(t, addr)
	defer c.close()
	body, serverErr, err := c.query(`SELECT COUNT(*) FROM t;`)
	if err != nil || serverErr != "" || !strings.Contains(body, "100") {
		t.Fatalf("query before idling: %v %q\n%s", err, serverErr, body)
	}
	// Now go quiet: the server should drop the connection on its own.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadByte(); err == nil {
		t.Fatal("connection still open after idle timeout")
	}
	deadline := time.Now().Add(2 * time.Second)
	for mIdleClosed.Value() == before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if mIdleClosed.Value() != before+1 {
		t.Fatalf("session_idle_closed_total = %d, want %d", mIdleClosed.Value(), before+1)
	}
}

// \q closes the connection server-side; shutdown with no open connections
// returns promptly.
func TestServerQuitAndShutdown(t *testing.T) {
	addr, srv := startServer(t, 100, session.Config{MaxConcurrent: 1})
	c := dialClient(t, addr)
	fmt.Fprintln(c.w, `\q`)
	c.w.Flush()
	if _, err := c.r.ReadByte(); err == nil {
		t.Fatal("connection still open after \\q")
	}
	c.close()
	done := make(chan struct{})
	go func() { srv.shutdown(5 * time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown hung with no connections")
	}
	// New connections are refused after shutdown.
	if conn, err := net.Dial("tcp", addr); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}
