// vwsql is an interactive SQL shell over the engine: type statements
// terminated by ';', or pipe a script on stdin. Meta commands: \q quits,
// \events dumps the monitor's event log.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vectorwise/internal/engine"
)

func main() {
	parallel := flag.Int("parallel", 0, "default degree of parallelism")
	timing := flag.Bool("timing", true, "print per-statement wall time")
	flag.Parse()

	db := engine.Open()
	db.Parallel = *parallel
	ctx := context.Background()

	interactive := isTerminal()
	if interactive {
		fmt.Println("vectorwise shell — end statements with ';', \\q to quit")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	if interactive {
		fmt.Print("vw> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			switch trimmed {
			case "\\q", "\\quit":
				return
			case "\\events":
				for _, ev := range db.Monitor.Events() {
					fmt.Printf("%s  %-14s %s\n", ev.Time.Format("15:04:05.000"), ev.Kind, ev.Msg)
				}
			default:
				fmt.Println("unknown meta command:", trimmed)
			}
			if interactive {
				fmt.Print("vw> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if interactive {
				fmt.Print("..> ")
			}
			continue
		}
		stmtText := buf.String()
		buf.Reset()
		t0 := time.Now()
		res, err := db.ExecScript(ctx, stmtText)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "error:", err)
		case res == nil:
		default:
			fmt.Print(engine.FormatResult(res))
			if *timing {
				fmt.Printf("time: %v\n", time.Since(t0).Round(time.Microsecond))
			}
		}
		if interactive {
			fmt.Print("vw> ")
		}
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
