// vwsql is an interactive SQL shell over the engine: type statements
// terminated by ';', or pipe a script on stdin. Meta commands: \q quits,
// \help lists them, \copy expands to a COPY statement (optionally
// clustered), \events dumps the monitor's event log, \plan [id] shows the
// physical plan a query ran with (most recent when id is omitted), \stats
// dumps the engine metrics registry, \trace [id] shows a query's per-phase
// trace.
//
// With -connect addr the shell runs no engine of its own: it becomes a
// client of a vwserver, forwarding statements over the line protocol and
// printing framed responses (meta commands other than \q are server-side
// SQL away — see sys.metrics, sys.queries, sys.sessions).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"vectorwise/internal/debughttp"
	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
	"vectorwise/internal/wire"
)

func main() {
	parallel := flag.Int("parallel", 0, "default degree of parallelism")
	timing := flag.Bool("timing", true, "print per-statement wall time")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (off when empty)")
	slowMs := flag.Int("slow-query-ms", 0, "log queries slower than this many milliseconds (0 disables)")
	connect := flag.String("connect", "", "connect to a vwserver at this address instead of running an embedded engine")
	dataDir := flag.String("data-dir", "", "durable data directory for the embedded engine (empty = in-memory)")
	flag.Parse()

	if *connect != "" {
		if err := runClient(*connect, *timing); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	var db *engine.DB
	if *dataDir != "" {
		var info *engine.RecoveryInfo
		var err error
		db, info, err = engine.OpenDir(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer db.Close()
		fmt.Fprintf(os.Stderr, "%s: %s\n", *dataDir, info.Summary())
	} else {
		db = engine.Open()
	}
	db.Parallel = *parallel
	if *slowMs > 0 {
		db.Monitor.SetSlowThreshold(time.Duration(*slowMs) * time.Millisecond)
	}
	if *debugAddr != "" {
		debughttp.Serve(*debugAddr, metrics.Default, db.Monitor)
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /queries, /debug/pprof)\n", *debugAddr)
	}
	ctx := context.Background()

	interactive := isTerminal()
	if interactive {
		fmt.Println("vectorwise shell — end statements with ';', \\q to quit")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	if interactive {
		fmt.Print("vw> ")
	}
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			fields := strings.Fields(trimmed)
			switch fields[0] {
			case "\\q", "\\quit":
				return
			case "\\events":
				for _, ev := range db.Monitor.Events() {
					fmt.Printf("%s  %-14s %s\n", ev.Time.Format("15:04:05.000"), ev.Kind, ev.Msg)
				}
			case "\\plan":
				showPlan(db, fields[1:])
			case "\\stats":
				showStats(db, fields[1:])
			case "\\trace":
				showTrace(db, fields[1:])
			case "\\help":
				fmt.Print(metaHelp)
			case "\\copy":
				sqlText, err := copySQL(fields)
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					break
				}
				t0 := time.Now()
				res, err := db.ExecScript(ctx, sqlText)
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					break
				}
				fmt.Print(engine.FormatResult(res))
				if *timing {
					fmt.Printf("time: %v\n", time.Since(t0).Round(time.Microsecond))
				}
			default:
				fmt.Println("unknown meta command:", trimmed, `(\help lists meta commands)`)
			}
			if interactive {
				fmt.Print("vw> ")
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if interactive {
				fmt.Print("..> ")
			}
			continue
		}
		stmtText := buf.String()
		buf.Reset()
		t0 := time.Now()
		res, err := db.ExecScript(ctx, stmtText)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "error:", err)
		case res == nil:
		default:
			fmt.Print(engine.FormatResult(res))
			if *timing {
				fmt.Printf("time: %v\n", time.Since(t0).Round(time.Microsecond))
			}
		}
		if interactive {
			fmt.Print("vw> ")
		}
	}
}

// runClient speaks the vwserver line protocol: forward ';'-terminated
// statements, print each framed response.
func runClient(addr string, timing bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	interactive := isTerminal()
	if interactive {
		fmt.Printf("connected to vwserver at %s — end statements with ';', \\q to quit\n", addr)
		fmt.Print("vw> ")
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<24)
	var buf strings.Builder
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		var stmtText string
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			fields := strings.Fields(trimmed)
			switch fields[0] {
			case `\q`, `\quit`:
				return nil
			case `\help`:
				fmt.Print(metaHelp)
			case `\copy`:
				// Expands client-side; the COPY statement itself runs on
				// the server, reading a file on the server's filesystem.
				sqlText, err := copySQL(fields)
				if err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				} else {
					stmtText = sqlText
				}
			default:
				fmt.Println("unknown meta command:", trimmed, `(\help lists meta commands; \events, \plan, \stats and \trace are local-engine only — see sys.metrics, sys.queries)`)
			}
			if stmtText == "" {
				if interactive {
					fmt.Print("vw> ")
				}
				continue
			}
		}
		if stmtText == "" {
			buf.WriteString(line)
			buf.WriteByte('\n')
			if !strings.Contains(line, ";") {
				if interactive {
					fmt.Print("..> ")
				}
				continue
			}
			stmtText = buf.String()
			buf.Reset()
		}
		t0 := time.Now()
		if _, err := w.WriteString(stmtText); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		body, serverErr, err := wire.ReadResponse(r)
		switch {
		case err != nil:
			return fmt.Errorf("server connection lost: %w", err)
		case serverErr != "":
			fmt.Fprintln(os.Stderr, "error:", serverErr)
		default:
			fmt.Print(body)
			if timing {
				fmt.Printf("time: %v\n", time.Since(t0).Round(time.Microsecond))
			}
		}
		if interactive {
			fmt.Print("vw> ")
		}
	}
	return scanner.Err()
}

// showPlan prints the physical plan recorded for a query: by monitor ID
// when given, otherwise the most recently finished query's.
func showPlan(db *engine.DB, args []string) {
	history := db.Monitor.History()
	if len(args) > 0 {
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			fmt.Println("usage: \\plan [query-id]")
			return
		}
		for _, qi := range append(history, db.Monitor.Active()...) {
			if qi.ID == id {
				printPlan(qi)
				return
			}
		}
		fmt.Printf("no query %d in monitor history\n", id)
		return
	}
	for i := len(history) - 1; i >= 0; i-- {
		if history[i].Plan != "" {
			printPlan(history[i])
			return
		}
	}
	fmt.Println("no planned queries yet")
}

func printPlan(qi monitor.QueryInfo) {
	fmt.Printf("q%d [%s]: %s\n", qi.ID, qi.Status, qi.SQL)
	if qi.Plan == "" {
		fmt.Println("(no physical plan recorded)")
		return
	}
	fmt.Print(qi.Plan)
}

// showStats prints the metrics registry; an optional substring argument
// filters by metric name (\stats colstore).
func showStats(db *engine.DB, args []string) {
	filter := ""
	if len(args) > 0 {
		filter = args[0]
	}
	n := 0
	for _, s := range db.MetricsSnapshot() {
		if filter != "" && !strings.Contains(s.Name, filter) {
			continue
		}
		fmt.Printf("%-52s %-9s %v\n", s.Name, s.Kind, s.Value)
		n++
	}
	if n == 0 {
		fmt.Println("(no matching metrics)")
	}
}

// showTrace prints a query's per-phase span trace: by monitor ID when
// given, otherwise the most recently finished query's.
func showTrace(db *engine.DB, args []string) {
	if len(args) > 0 {
		id, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil {
			fmt.Println("usage: \\trace [query-id]")
			return
		}
		qi, ok := db.FindQuery(id)
		if !ok {
			fmt.Printf("no query %d in monitor history\n", id)
			return
		}
		printTrace(qi)
		return
	}
	history := db.Monitor.History()
	for i := len(history) - 1; i >= 0; i-- {
		if len(history[i].Spans) > 0 {
			printTrace(history[i])
			return
		}
	}
	fmt.Println("no traced queries yet")
}

func printTrace(qi monitor.QueryInfo) {
	fmt.Printf("q%d [%s]: %s\n", qi.ID, qi.Status, qi.SQL)
	fmt.Print(monitor.FormatSpans(qi.Spans))
}

const metaHelp = `meta commands:
  \q, \quit             quit the shell
  \help                 show this help
  \copy TABLE FILE [col ...]
                        bulk-load a CSV file: expands to
                        COPY TABLE FROM 'FILE' [ORDER BY col, ...];
                        with columns the rows are sorted on the way into
                        storage (clustered load, ordered zone maps)
  \events               dump the monitor event log        (local engine)
  \plan [id]            show a query's physical plan      (local engine)
  \stats [substr]       dump engine metrics               (local engine)
  \trace [id]           show a query's per-phase trace    (local engine)
`

// copySQL expands a \copy meta command into a COPY statement. Trailing
// column names become the clustered-load sort order.
func copySQL(fields []string) (string, error) {
	if len(fields) < 3 {
		return "", fmt.Errorf(`usage: \copy TABLE FILE [col ...]`)
	}
	sql := fmt.Sprintf("COPY %s FROM '%s'", fields[1], fields[2])
	if len(fields) > 3 {
		sql += " ORDER BY " + strings.Join(fields[3:], ", ")
	}
	return sql + ";\n", nil
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}
