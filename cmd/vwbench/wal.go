package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"vectorwise/internal/fsim"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
	"vectorwise/internal/wal"
)

var (
	walMode       = flag.Bool("wal", false, "benchmark WAL group commit instead of running experiments")
	walGoroutines = flag.Int("wal-goroutines", 8, "concurrent committers for -wal")
	walAppends    = flag.Int("wal-appends", 2000, "appends per committer for -wal")
)

// runWALBench measures group-commit throughput on the real filesystem:
// G committers race Append (each blocking on its fsync ack), and the
// fsync-coalescing win shows up as appends-per-fsync > 1.
func runWALBench() {
	dir, err := os.MkdirTemp("", "vwbench-wal-*")
	check(err)
	defer os.RemoveAll(dir)

	w, _, err := wal.Open(fsim.OS, filepath.Join(dir, "wal.log"))
	check(err)
	defer w.Close()

	snap := func(name string) float64 {
		v, _ := metrics.Default.Get(name)
		return v
	}
	appends0, fsyncs0, bytes0 := snap("wal_appends_total"), snap("wal_fsyncs_total"), snap("wal_bytes_total")

	ops := []wal.Op{{
		Kind: wal.OpInsert,
		Row:  []types.Value{types.NewInt64(42), types.NewFloat64(0.5)},
	}}
	g, m := *walGoroutines, *walAppends
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < m; j++ {
				if _, err := w.Append("bench", ops); err != nil {
					check(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	appends := snap("wal_appends_total") - appends0
	fsyncs := snap("wal_fsyncs_total") - fsyncs0
	written := snap("wal_bytes_total") - bytes0
	fmt.Printf("wal bench: %d goroutines x %d appends on %s\n", g, m, dir)
	fmt.Printf("elapsed:           %12v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("appends/sec:       %12.0f\n", appends/elapsed.Seconds())
	fmt.Printf("fsyncs:            %12.0f\n", fsyncs)
	if fsyncs > 0 {
		fmt.Printf("appends per fsync: %12.1f\n", appends/fsyncs)
	}
	fmt.Printf("bytes written:     %12.0f (%.1f MB/s)\n", written, written/elapsed.Seconds()/1e6)
}
