package main

import (
	"context"
	"encoding/csv"
	"fmt"
	"log"
	"os"
	"reflect"
	"strconv"

	"vectorwise/internal/colstore"
	"vectorwise/internal/datagen"
	"vectorwise/internal/engine"
	"vectorwise/internal/types"
)

// The clustered-load matrix: the same lineitem CSV is bulk-loaded twice,
// once through COPY ... ORDER BY l_shipdate (clustered layout, ordered zone
// maps) and once through plain COPY (generation order, interleaved dates).
// cload times the load itself — the price of the external sort-merge —
// and cprune times a narrow date-range scan on each layout, recording the
// fraction of row groups the scan actually decoded. The clustered layout
// must answer byte-identically to the unclustered one while touching at
// most cpruneMaxTouched of the groups; either failure aborts the suite.
const (
	cloadName        = "cload"
	cpruneName       = "cprune"
	cluLayout        = "clu"
	uncLayout        = "unc"
	cpruneMaxTouched = 0.2
)

// lineitemDateSpan is datagen's l_shipdate spread: uniform over this many
// days from 1992-01-01 (~7 years, the TPC-H range).
const lineitemDateSpan = 2557

// runClusterCells runs the cload/cprune cells at one scale and appends them
// to rep. Needs at least 4 full row groups (scale >= 4*BlockRows + 1) for a
// mid-table range to stay under the touched-groups bound.
func runClusterCells(rep *suiteReport, scale int) {
	csvPath, written := writeLineitemCSV(scale)
	defer os.Remove(csvPath)
	ctx := context.Background()

	dbs := map[string]*engine.DB{}
	for _, layout := range []string{cluLayout, uncLayout} {
		copyStmt := fmt.Sprintf("COPY lineitem FROM '%s'", csvPath)
		if layout == cluLayout {
			copyStmt += " ORDER BY l_shipdate"
		}
		var db *engine.DB
		var loaded int64
		before := counterSnapshot()
		d := best(func() {
			db = engine.Open()
			mustRun(db, ctx, datagen.LineitemDDL)
			loaded = mustRun(db, ctx, copyStmt).Affected
		})
		if loaded != written {
			log.Fatalf("cload+%s: loaded %d rows, CSV holds %d", layout, loaded, written)
		}
		dbs[layout] = db
		cell := suiteCell{
			Name:       cloadName,
			Rows:       scale,
			Layout:     layout,
			Seconds:    d.Seconds(),
			ResultRows: loaded,
			Metrics:    metricDeltas(before, counterSnapshot()),
		}
		rep.Results = append(rep.Results, cell)
		fmt.Printf("%-18s rows=%-9d %12v  (%d rows loaded)\n", cell.key(), scale, d, loaded)
	}
	if _, _, _, ok := dbs[cluLayout].ClusteredWindow("lineitem", "l_shipdate", nil, nil); !ok {
		log.Fatal("cload: clustered COPY left no ordered zone maps on l_shipdate")
	}

	loDate, hiDate := cpruneRange(scale)
	q := fmt.Sprintf(`SELECT COUNT(*), SUM(l_orderkey), SUM(l_quantity),
		MIN(l_shipdate), MAX(l_shipdate) FROM lineitem
		WHERE l_shipdate BETWEEN DATE '%s' AND DATE '%s'`, loDate, hiDate)
	answers := map[string]*engine.Result{}
	for _, layout := range []string{cluLayout, uncLayout} {
		db := dbs[layout]
		mustRun(db, ctx, q) // warm
		before := counterSnapshot()
		var res *engine.Result
		d := best(func() { res = mustRun(db, ctx, q) })
		m := metricDeltas(before, counterSnapshot())
		answers[layout] = res
		// Group counters accumulate across reps; the ratio is per-query.
		scanned, skipped := m["colstore_groups_scanned_total"], m["colstore_groups_skipped_total"]
		ratio := 0.0
		if scanned+skipped > 0 {
			ratio = scanned / (scanned + skipped)
		}
		if layout == cluLayout && ratio > cpruneMaxTouched {
			log.Fatalf("cprune: clustered range scan touched %.0f%% of row groups, want <= %.0f%%",
				ratio*100, cpruneMaxTouched*100)
		}
		cell := suiteCell{
			Name:          cpruneName,
			Rows:          scale,
			Layout:        layout,
			Seconds:       d.Seconds(),
			ResultRows:    int64(len(res.Rows)),
			GroupsTouched: ratio,
			Metrics:       m,
		}
		rep.Results = append(rep.Results, cell)
		fmt.Printf("%-18s rows=%-9d %12v  groups touched=%.0f%%\n", cell.key(), scale, d, ratio*100)
	}
	if !reflect.DeepEqual(answers[cluLayout].Rows, answers[uncLayout].Rows) {
		log.Fatalf("cprune: clustered layout diverges from unclustered:\n%v\nwant %v",
			answers[cluLayout].Rows, answers[uncLayout].Rows)
	}
}

// cpruneRange picks a date interval sitting strictly inside one full row
// group of the clustered layout: the middle group, from a quarter to
// three-quarters of the way through it. Dates are uniform over
// lineitemDateSpan days, so the date whose rank is r sits near day
// r/scale·span; the quarter-group margin (4K rows) dwarfs both the sampling
// noise and the duplicate-date runs at either end.
func cpruneRange(scale int) (string, string) {
	g := scale / colstore.BlockRows / 2 // a full group even when the last is partial
	rowLo := g*colstore.BlockRows + colstore.BlockRows/4
	rowHi := g*colstore.BlockRows + 3*colstore.BlockRows/4
	start := types.DateFromYMD(1992, 1, 1)
	lo := start + int32(float64(rowLo)/float64(scale)*lineitemDateSpan)
	hi := start + int32(float64(rowHi)/float64(scale)*lineitemDateSpan)
	return types.FormatDate(lo), types.FormatDate(hi)
}

// writeLineitemCSV streams the suite's lineitem rows (same sf/seed as
// loadSuiteTables) into a temp CSV in COPY's format: no header, empty field
// = NULL, dates as YYYY-MM-DD. Returns the path and the row count.
func writeLineitemCSV(scale int) (string, int64) {
	f, err := os.CreateTemp("", "vwbench-lineitem-*.csv")
	check(err)
	w := csv.NewWriter(f)
	sf := float64(scale) / datagen.RowsPerSF
	var written int64
	rec := make([]string, datagen.LineitemSchema().Len())
	check(datagen.Lineitems(sf, 42, func(row []types.Value) error {
		for i, v := range row {
			rec[i] = csvField(v)
		}
		written++
		return w.Write(rec)
	}))
	w.Flush()
	check(w.Error())
	check(f.Close())
	return f.Name(), written
}

// csvField renders one value so COPY's types.ParseValue round-trips it.
func csvField(v types.Value) string {
	if v.Null {
		return ""
	}
	switch v.Kind {
	case types.KindInt32, types.KindInt64:
		return strconv.FormatInt(v.I64, 10)
	case types.KindFloat64:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case types.KindDate:
		return types.FormatDate(int32(v.I64))
	case types.KindBool:
		if v.I64 != 0 {
			return "true"
		}
		return "false"
	default:
		return v.Str
	}
}
