package main

import (
	"log"

	"vectorwise/internal/colstore"
	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// colstoreTable wraps a single-column int64 table for the E5 merge-scan
// measurement.
type colstoreTable struct {
	tab *colstore.Table
}

func (t *colstoreTable) build(rows int) {
	t.tab = colstore.NewTable(types.NewSchema(types.Col("v", types.Int64)))
	ap := t.tab.NewAppender()
	for i := 0; i < rows; i++ {
		if err := ap.AppendRow([]types.Value{types.NewInt64(int64(i))}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		log.Fatal(err)
	}
}

// mergeScan drains the table through a PDT merger and asserts the row
// count.
func mergeScan(t *colstoreTable, ops []pdt.Op, rows int) {
	sc, err := t.tab.NewScanner([]int{0}, vec.DefaultSize)
	if err != nil {
		log.Fatal(err)
	}
	m := pdt.NewMergerOps(sc, ops)
	b := vec.NewBatch(m.Kinds(), 0)
	var total int
	for {
		_, n, done, err := m.Next(b)
		if err != nil {
			log.Fatal(err)
		}
		if done {
			break
		}
		total += n
	}
	if total != rows {
		log.Fatalf("merge scan rows %d, want %d", total, rows)
	}
}
