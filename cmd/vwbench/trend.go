package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// -trend turns the committed per-PR suite artifacts into a trajectory table:
// one row per cell, one timing column per BENCH_<n>.json (in PR order), so a
// cell's drift across the repo's history is visible at a glance. Schemas may
// differ between artifacts — older ones simply leave their missing cells
// blank — and, like -prev diffing, the output is informational: timings
// shift with hardware, so no trend is a failure.
var trendDir = flag.String("trend", "", "print the timing trajectory across the BENCH_*.json artifacts in this directory")

func runTrend(dir string) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	check(err)
	if len(paths) == 0 {
		log.Fatalf("trend: no BENCH_*.json artifacts in %s", dir)
	}
	type artifact struct {
		name  string
		num   int
		cells map[string]suiteCell
	}
	arts := make([]artifact, 0, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		check(err)
		var rep suiteReport
		if err := json.Unmarshal(data, &rep); err != nil {
			log.Fatalf("trend: %s: %v", p, err)
		}
		a := artifact{
			name:  strings.TrimSuffix(filepath.Base(p), ".json"),
			num:   -1, // non-numeric suffixes sort first, by name
			cells: map[string]suiteCell{},
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(a.name, "BENCH_")); err == nil {
			a.num = n
		}
		for _, c := range rep.Results {
			a.cells[c.key()] = c
		}
		arts = append(arts, a)
	}
	sort.Slice(arts, func(i, j int) bool {
		if arts[i].num != arts[j].num {
			return arts[i].num < arts[j].num
		}
		return arts[i].name < arts[j].name
	})

	// Cells in first-appearance order, oldest artifact first, so rows added
	// by later PRs trail the long-lived ones.
	var keys []string
	seen := map[string]bool{}
	for _, a := range arts {
		var local []string
		for k := range a.cells {
			if !seen[k] {
				seen[k] = true
				local = append(local, k)
			}
		}
		sort.Strings(local)
		keys = append(keys, local...)
	}

	fmt.Printf("%-22s", "cell")
	for _, a := range arts {
		fmt.Printf(" %12s", a.name)
	}
	fmt.Println()
	for _, k := range keys {
		fmt.Printf("%-22s", k)
		for _, a := range arts {
			if c, ok := a.cells[k]; ok {
				fmt.Printf(" %10.2fms", c.Seconds*1e3)
			} else {
				fmt.Printf(" %12s", "—")
			}
		}
		fmt.Println()
	}
}
