// vwbench regenerates the experiment tables of EXPERIMENTS.md outside the
// testing framework: one section per experiment E1…E12 (see DESIGN.md §3),
// each printing the series the corresponding paper claim predicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"vectorwise/internal/bufmgr"
	"vectorwise/internal/compress"
	"vectorwise/internal/datagen"
	"vectorwise/internal/debughttp"
	"vectorwise/internal/engine"
	"vectorwise/internal/expr"
	"vectorwise/internal/iosim"
	"vectorwise/internal/metrics"
	"vectorwise/internal/pdt"
	"vectorwise/internal/primitives"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/types"
)

var (
	rows      = flag.Int("rows", 200_000, "lineitem rows for engine experiments")
	reps      = flag.Int("reps", 3, "repetitions per measurement (min is reported)")
	only      = flag.String("only", "", "comma-separated experiment ids (e.g. E1,E6)")
	debugAddr = flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (off when empty)")
)

func main() {
	flag.Parse()
	if *checkPath != "" {
		runCheck(*checkPath)
		return
	}
	if *trendDir != "" {
		runTrend(*trendDir)
		return
	}
	if *walMode {
		runWALBench()
		return
	}
	if *debugAddr != "" {
		debughttp.Serve(*debugAddr, metrics.Default, nil)
		fmt.Printf("debug server on http://%s (/metrics, /debug/pprof)\n", *debugAddr)
	}
	if *suiteMode {
		runSuite()
		return
	}
	sel := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(strings.ToUpper(s)); s != "" {
			sel[s] = true
		}
	}
	want := func(id string) bool { return len(sel) == 0 || sel[id] }

	db, heap := setup()
	if want("E1") {
		e1(db, heap)
	}
	if want("E2") {
		e2(db)
	}
	if want("E3") {
		e3()
	}
	if want("E4") {
		e4()
	}
	if want("E5") {
		e5()
	}
	if want("E6") {
		e6(db)
	}
	if want("E7") {
		e7()
	}
	if want("E8") {
		e8()
	}
	if want("E9") {
		e9(db)
	}
	if want("E10") {
		e10(db)
	}
	if want("E11") {
		e11(db)
	}
	if want("E12") {
		e12(db, heap)
	}
}

func header(id, claim string) {
	fmt.Printf("\n=== %s — %s ===\n", id, claim)
}

// best runs f reps times and returns the fastest wall time.
func best(f func()) time.Duration {
	bestD := time.Duration(1<<62 - 1)
	for i := 0; i < *reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < bestD {
			bestD = d
		}
	}
	return bestD
}

func setup() (*engine.DB, *rowengine.HeapTable) {
	db := engine.Open()
	ctx := context.Background()
	mustRun(db, ctx, datagen.LineitemDDL)
	sf := float64(*rows) / datagen.RowsPerSF
	check(db.LoadBatchFunc("lineitem", func(emit func(row []types.Value) error) error {
		return datagen.Lineitems(sf, 42, emit)
	}))
	mustRun(db, ctx, "ANALYZE lineitem")
	// Classic copy for the tuple-at-a-time baseline.
	heap := rowengine.NewHeapTable(datagen.LineitemSchema(), -1)
	check(datagen.Lineitems(sf, 42, func(row []types.Value) error {
		cp := make([]types.Value, len(row))
		copy(cp, row)
		_, err := heap.Insert(cp)
		return err
	}))
	fmt.Printf("fixtures: %d lineitem rows (vectorwise + heap)\n", *rows)
	return db, heap
}

const q1 = `SELECT l_returnflag, l_linestatus, COUNT(*), SUM(l_quantity),
	SUM(l_extendedprice * (1 - l_discount)), AVG(l_extendedprice)
	FROM lineitem WHERE l_shipdate <= DATE '1998-09-01'
	GROUP BY l_returnflag, l_linestatus`

func e1(db *engine.DB, heap *rowengine.HeapTable) {
	header("E1", "vectorized vs tuple-at-a-time (paper: >10x)")
	vect := best(func() { mustRun(db, context.Background(), q1) })
	tuple := best(func() { runQ1Classic(heap) })
	fmt.Printf("vectorized (full SQL pipeline): %12v\n", vect)
	fmt.Printf("tuple-at-a-time (classic):      %12v\n", tuple)
	fmt.Printf("speedup:                        %12.1fx\n", float64(tuple)/float64(vect))
}

func runQ1Classic(heap *rowengine.HeapTable) {
	cutoff := types.DateFromYMD(1998, 9, 1)
	scan := rowengine.NewTableScan(heap)
	filt := rowengine.NewFilter(scan, expr.NewCall("<=",
		expr.Col(8, "d", types.Date), expr.CDate(cutoff)))
	proj := rowengine.NewMap(filt, []expr.Expr{
		expr.Col(6, "f", types.String),
		expr.Col(7, "s", types.String),
		expr.Col(2, "q", types.Int32),
		expr.NewCall("*", expr.Col(3, "ep", types.Float64),
			expr.NewCall("-", expr.CFloat(1), expr.Col(4, "dc", types.Float64))),
		expr.Col(3, "ep", types.Float64),
	}, []string{"f", "s", "q", "dp", "ep"})
	agg := rowengine.NewAggRow(proj, []int{0, 1}, []rowengine.RowAggSpec{
		{Fn: "count", Col: -1}, {Fn: "sum", Col: 2}, {Fn: "sum", Col: 3}, {Fn: "avg", Col: 4},
	})
	if _, err := rowengine.CollectRows(context.Background(), agg); err != nil {
		log.Fatal(err)
	}
}

func e2(db *engine.DB) {
	header("E2", "vector-size sweep (X100 U-curve, optimum near 1K)")
	fmt.Printf("%10s %14s\n", "vecsize", "time")
	for _, vs := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384} {
		q := q1 + fmt.Sprintf(" WITH (VECTORSIZE=%d)", vs)
		d := best(func() { mustRun(db, context.Background(), q) })
		fmt.Printf("%10d %14v\n", vs, d)
	}
}

func e3() {
	header("E3", "PFOR-family compression: ratio and decode bandwidth")
	rng := rand.New(rand.NewSource(7))
	n := 1 << 16
	inputs := map[string][]int64{}
	sorted := make([]int64, n)
	acc := int64(1_000_000)
	for i := range sorted {
		acc += int64(rng.Intn(8))
		sorted[i] = acc
	}
	inputs["sorted"] = sorted
	small := make([]int64, n)
	for i := range small {
		small[i] = int64(rng.Intn(100))
	}
	inputs["smallrange"] = small
	runs := make([]int64, n)
	for i := range runs {
		runs[i] = int64(i / 4096)
	}
	inputs["runs"] = runs
	raw := float64(n * 8)
	fmt.Printf("%-12s %-10s %8s %14s\n", "input", "codec", "ratio", "decode")
	for _, in := range []string{"sorted", "smallrange", "runs"} {
		vals := inputs[in]
		for _, c := range []struct {
			name string
			enc  func([]byte, []int64) []byte
			dec  func([]int64, []byte) ([]int64, []byte, error)
		}{
			{"pfor", compress.EncodePFOR, compress.DecodePFOR},
			{"pfordelta", compress.EncodePFORDelta, compress.DecodePFORDelta},
			{"rle", compress.EncodeRLE, compress.DecodeRLE},
		} {
			buf := c.enc(nil, vals)
			dst := make([]int64, n)
			d := best(func() {
				for k := 0; k < 32; k++ {
					var err error
					dst, _, err = c.dec(dst, buf)
					check(err)
				}
			})
			gbs := raw * 32 / d.Seconds() / 1e9
			fmt.Printf("%-12s %-10s %7.1fx %11.2f GB/s\n", in, c.name, raw/float64(len(buf)), gbs)
		}
	}
}

type chunkSource struct {
	disk   *iosim.Disk
	chunks int
}

func (s *chunkSource) NumChunks() int { return s.chunks }
func (s *chunkSource) ReadChunk(ctx context.Context, id int) ([]byte, error) {
	if err := s.disk.Read(ctx, 1<<20); err != nil {
		return nil, err
	}
	return []byte{byte(id)}, nil
}

func e4() {
	header("E4", "cooperative scans: physical loads, LRU vs ABM (table=64 chunks, pool=16)")
	fmt.Printf("%8s %12s %12s\n", "scans", "LRU loads", "ABM loads")
	for _, nScans := range []int{1, 2, 4, 8} {
		var loads [2]int64
		for pi, coop := range []bool{false, true} {
			disk := iosim.NewDisk(100*time.Microsecond, 0)
			src := &chunkSource{disk: disk, chunks: 64}
			loads[pi] = scanFleet(coop, src, 16, nScans)
		}
		fmt.Printf("%8d %12d %12d\n", nScans, loads[0], loads[1])
	}
}

func scanFleet(coop bool, src bufmgr.Source, pool, nScans int) int64 {
	ctx := context.Background()
	offset := pool + 4
	progress := make([]chan struct{}, nScans)
	for i := range progress {
		progress[i] = make(chan struct{})
	}
	var loads func() int64
	var mkStep func() func() bool
	if coop {
		a := bufmgr.NewABM(src, pool)
		loads = func() int64 { return a.Stats().Loads }
		mkStep = func() func() bool {
			s := a.Attach()
			return func() bool { _, _, ok, err := s.Next(ctx); return err == nil && ok }
		}
	} else {
		p := bufmgr.NewLRUPool(src, pool)
		loads = func() int64 { return p.Stats().Loads }
		mkStep = func() func() bool {
			s := bufmgr.NewNormalScan(p)
			return func() bool { _, _, ok, err := s.Next(ctx); return err == nil && ok }
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < nScans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-progress[i-1]
			}
			step := mkStep()
			consumed, released := 0, false
			for step() {
				consumed++
				if consumed == offset && !released {
					close(progress[i])
					released = true
				}
			}
			if !released {
				close(progress[i])
			}
		}(i)
	}
	wg.Wait()
	return loads()
}

func e5() {
	header("E5", "PDT updates and merge-scan overhead")
	const stable = 1_000_000
	rng := rand.New(rand.NewSource(3))
	p := pdt.New()
	const updates = 50_000
	d := best(func() {
		p = pdt.New()
		for i := 0; i < updates; i++ {
			check(p.ModifyAt(rng.Int63n(stable), 0, types.NewInt64(int64(i))))
		}
	})
	fmt.Printf("%d random modifies into 1M-row image: %v (%.0f ns/op)\n",
		updates, d, float64(d.Nanoseconds())/updates)
	// Merge-scan overhead vs delta count: scan 1M rows through a merger.
	tab := mkIntTable(stable)
	fmt.Printf("%12s %14s\n", "deltas", "scan time")
	for _, deltas := range []int{0, 1000, 10000, 100000} {
		pp := pdt.New()
		for i := 0; i < deltas; i++ {
			check(pp.ModifyAt(rng.Int63n(stable), 0, types.NewInt64(-1)))
		}
		ops := pp.Ops()
		d := best(func() { mergeScan(tab, ops, stable) })
		fmt.Printf("%12d %14v\n", deltas, d)
	}
}

func e6(db *engine.DB) {
	header("E6", "multi-core scaling via rewriter-inserted exchanges")
	base := best(func() { mustRun(db, context.Background(), q1) })
	fmt.Printf("%10s %12s %10s\n", "threads", "time", "speedup")
	fmt.Printf("%10d %12v %9.2fx\n", 1, base, 1.0)
	for _, p := range []int{2, 4, 8} {
		q := q1 + fmt.Sprintf(" WITH (PARALLEL=%d)", p)
		d := best(func() { mustRun(db, context.Background(), q) })
		fmt.Printf("%10d %12v %9.2fx\n", p, d, float64(base)/float64(d))
	}
}

func e7() {
	header("E7", "NULL handling: two-column decomposition vs branchy vs boxed")
	n := 1 << 20
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, n)
	inds := make([]bool, n)
	boxed := make([]types.Value, n)
	for i := range vals {
		if rng.Intn(10) == 0 {
			inds[i] = true
			boxed[i] = types.NewNull(types.KindFloat64)
		} else {
			vals[i] = rng.Float64()
			boxed[i] = types.NewFloat64(vals[i])
		}
	}
	d1 := best(func() {
		for k := 0; k < 16; k++ {
			primitives.DecomposedSumDirect(vals, inds, nil, n)
		}
	})
	d2 := best(func() {
		for k := 0; k < 16; k++ {
			primitives.NullAwareSumDirect(vals, inds, nil, n)
		}
	})
	d3 := best(func() {
		for k := 0; k < 16; k++ {
			var s float64
			var c int64
			for _, v := range boxed {
				if !v.Null {
					s += v.F64
					c++
				}
			}
			_ = s
		}
	})
	fmt.Printf("decomposed (production):  %12v\n", d1/16)
	fmt.Printf("branchy NULL-aware:       %12v\n", d2/16)
	fmt.Printf("boxed tuple-at-a-time:    %12v\n", d3/16)
}

func e8() {
	header("E8", "checked arithmetic: unchecked vs vectorized-checked vs naive")
	n := 1 << 20
	rng := rand.New(rand.NewSource(5))
	x := make([]int64, n)
	y := make([]int64, n)
	for i := range x {
		x[i] = rng.Int63n(1 << 30)
		y[i] = rng.Int63n(1 << 30)
	}
	dst := make([]int64, n)
	d1 := best(func() {
		for k := 0; k < 16; k++ {
			primitives.AddVV(dst, x, y, nil)
		}
	})
	d2 := best(func() {
		for k := 0; k < 16; k++ {
			check(primitives.CheckedAddVV(dst, x, y, nil))
		}
	})
	d3 := best(func() {
		for k := 0; k < 16; k++ {
			check(primitives.NaiveCheckedAddVV(dst, x, y, nil, primitives.NaiveAddOverflowCheck[int64]))
		}
	})
	fmt.Printf("unchecked:           %12v   (1.00x)\n", d1/16)
	fmt.Printf("checked vectorized:  %12v   (%.2fx)\n", d2/16, float64(d2)/float64(d1))
	fmt.Printf("checked naive:       %12v   (%.2fx)\n", d3/16, float64(d3)/float64(d1))
}

func e9(db *engine.DB) {
	header("E9", "kernel-native vs rewriter-lowered functions")
	ctx := context.Background()
	mustRun(db, ctx, `SELECT COUNT(*) FROM lineitem WHERE TRIM(l_shipmode) = 'AIR'`) // warm
	native := best(func() {
		mustRun(db, ctx, `SELECT COUNT(*) FROM lineitem WHERE TRIM(l_shipmode) = 'AIR'`)
	})
	lowered := best(func() {
		mustRun(db, ctx, `SELECT COUNT(*) FROM lineitem WHERE LTRIM(RTRIM(l_shipmode)) = 'AIR'`)
	})
	fmt.Printf("trim kernel-native:        %12v\n", native)
	fmt.Printf("ltrim(rtrim()) lowered:    %12v\n", lowered)
}

func e10(db *engine.DB) {
	header("E10", "query cancellation latency (parallel plan)")
	var lat time.Duration
	const tries = 5
	for i := 0; i < tries; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = db.Exec(ctx, q1+" WITH (PARALLEL=8)")
		}()
		time.Sleep(3 * time.Millisecond)
		t0 := time.Now()
		cancel()
		<-done
		lat += time.Since(t0)
	}
	fmt.Printf("mean cancel→teardown latency over %d runs: %v\n", tries, lat/tries)
}

func e11(db *engine.DB) {
	header("E11", "anti-join NULL semantics (NOT IN)")
	ctx := context.Background()
	mustRun(db, ctx, `CREATE TABLE excl (k BIGINT)`)
	mustRun(db, ctx, `INSERT INTO excl VALUES (1), (2), (3)`)
	r1, err := db.Exec(ctx, `SELECT COUNT(*) FROM lineitem WHERE l_quantity NOT IN (SELECT k FROM excl)`)
	check(err)
	mustRun(db, ctx, `INSERT INTO excl VALUES (NULL)`)
	r2, err := db.Exec(ctx, `SELECT COUNT(*) FROM lineitem WHERE l_quantity NOT IN (SELECT k FROM excl)`)
	check(err)
	fmt.Printf("NOT IN (1,2,3):        %v rows\n", r1.Rows[0][0])
	fmt.Printf("NOT IN (1,2,3,NULL):   %v rows   (SQL says: empty)\n", r2.Rows[0][0])
	mustRun(db, ctx, `DROP TABLE excl`)
}

func e12(db *engine.DB, heap *rowengine.HeapTable) {
	header("E12", "dual storage: HEAP point ops vs VECTORWISE scans")
	rng := rand.New(rand.NewSource(21))
	// Build an indexed heap table of 100k keys.
	schema := types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Float64))
	kv := rowengine.NewHeapTable(schema, 0)
	for i := 0; i < 100_000; i++ {
		_, err := kv.Insert([]types.Value{types.NewInt64(int64(i)), types.NewFloat64(float64(i))})
		check(err)
	}
	d := best(func() {
		for k := 0; k < 10000; k++ {
			row, err := kv.Lookup(rng.Int63n(100_000))
			check(err)
			if row == nil {
				log.Fatal("missing")
			}
		}
	})
	fmt.Printf("heap indexed point lookup:      %8.0f ns/op\n", float64(d.Nanoseconds())/10000)
	scanHeap := best(func() { runQ1Classic(heap) })
	scanVw := best(func() { mustRun(db, context.Background(), q1) })
	fmt.Printf("full-scan aggregation: heap %v vs vectorwise %v (%.1fx)\n",
		scanHeap, scanVw, float64(scanHeap)/float64(scanVw))
	_ = heap
}

// --- helpers ---

func mkIntTable(rows int) *colstoreTable {
	t := &colstoreTable{}
	t.build(rows)
	return t
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustRun(db *engine.DB, ctx context.Context, q string) *engine.Result {
	res, err := db.Exec(ctx, q)
	if err != nil {
		log.Fatalf("%s\n→ %v", q, err)
	}
	return res
}
