package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func validReport() suiteReport {
	rep := suiteReport{Schema: suiteSchema, Scales: []int{1000, 4000}, Reps: 1}
	for _, scale := range rep.Scales {
		for _, q := range suiteQueries {
			rep.Results = append(rep.Results, suiteCell{
				Name:    q.name,
				Rows:    scale,
				Seconds: 0.001,
				Metrics: map[string]float64{"colstore_groups_scanned_total": 1},
			})
		}
	}
	return rep
}

func marshal(t *testing.T, rep suiteReport) []byte {
	t.Helper()
	b, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCheckReportValid(t *testing.T) {
	if problems := checkReport(marshal(t, validReport())); len(problems) != 0 {
		t.Fatalf("valid report rejected: %v", problems)
	}
}

func TestCheckReportMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*suiteReport)
		wantErr string
	}{
		{"wrong schema", func(r *suiteReport) { r.Schema = "vwbench/v0" }, "schema"},
		{"one scale", func(r *suiteReport) { r.Scales = r.Scales[:1] }, "scales"},
		{"missing cell", func(r *suiteReport) { r.Results = r.Results[1:] }, "missing cell"},
		{"zero seconds", func(r *suiteReport) { r.Results[0].Seconds = 0 }, "seconds"},
		{"no metrics", func(r *suiteReport) { r.Results[0].Metrics = nil }, "metric deltas"},
	}
	for _, tc := range cases {
		rep := validReport()
		tc.mutate(&rep)
		problems := checkReport(marshal(t, rep))
		if len(problems) == 0 {
			t.Fatalf("%s: accepted", tc.name)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.wantErr) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: problems %v lack %q", tc.name, problems, tc.wantErr)
		}
	}
	if len(checkReport([]byte("{not json"))) == 0 {
		t.Fatal("garbage accepted")
	}
}
