package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func validReport() suiteReport {
	rep := suiteReport{Schema: suiteSchema, Scales: []int{1000, 4000}, Reps: 1}
	for _, scale := range rep.Scales {
		for _, q := range suiteQueries {
			rep.Results = append(rep.Results, suiteCell{
				Name:    q.name,
				Rows:    scale,
				Seconds: 0.001,
				Metrics: map[string]float64{"colstore_groups_scanned_total": 1},
			})
		}
	}
	large := rep.Scales[len(rep.Scales)-1]
	for _, q := range scalingQueries {
		for _, p := range scalingDegrees {
			rep.Results = append(rep.Results, suiteCell{
				Name:       q.name,
				Rows:       large,
				Parallel:   p,
				Seconds:    0.002 / float64(p),
				ResultRows: 1,
				Metrics:    map[string]float64{"exec_morsels_total{op=\"ParallelScan\"}": 4},
			})
		}
	}
	for _, coop := range []bool{true, false} {
		for _, cl := range concurrencyClients {
			loads := 10.0 // LRU reloads the table per client
			if coop {
				loads = 10.0 / float64(cl) // cooperative scans share reads
			}
			rep.Results = append(rep.Results, suiteCell{
				Name:          cscanName,
				Rows:          large,
				Clients:       cl,
				Coop:          coop,
				Seconds:       0.003,
				ResultRows:    1,
				LoadsPerQuery: loads,
				Metrics:       map[string]float64{"bufmgr_loads_total": 10},
			})
		}
	}
	for _, layout := range []string{cluLayout, uncLayout} {
		touched := 1.0 // the plain layout decodes every group
		if layout == cluLayout {
			touched = 0.2 // the clustered layout prunes to the window
		}
		rep.Results = append(rep.Results,
			suiteCell{
				Name:       cloadName,
				Rows:       large,
				Layout:     layout,
				Seconds:    0.005,
				ResultRows: int64(large),
				Metrics:    map[string]float64{"colstore_groups_scanned_total": 1},
			},
			suiteCell{
				Name:          cpruneName,
				Rows:          large,
				Layout:        layout,
				Seconds:       0.001,
				ResultRows:    1,
				GroupsTouched: touched,
				Metrics:       map[string]float64{"colstore_groups_skipped_total": 4},
			})
	}
	return rep
}

// mutateCell rewrites the first cell matching pred (panics if none matches,
// which would make a mutation case vacuous).
func mutateCell(r *suiteReport, pred func(*suiteCell) bool, f func(*suiteCell)) {
	for i := range r.Results {
		if pred(&r.Results[i]) {
			f(&r.Results[i])
			return
		}
	}
	panic("mutateCell: no matching cell")
}

// dropCell removes the first cell matching pred.
func dropCell(r *suiteReport, pred func(*suiteCell) bool) {
	for i := range r.Results {
		if pred(&r.Results[i]) {
			r.Results = append(r.Results[:i], r.Results[i+1:]...)
			return
		}
	}
	panic("dropCell: no matching cell")
}

func marshal(t *testing.T, rep suiteReport) []byte {
	t.Helper()
	b, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCheckReportValid(t *testing.T) {
	if problems := checkReport(marshal(t, validReport())); len(problems) != 0 {
		t.Fatalf("valid report rejected: %v", problems)
	}
}

func TestCheckReportMalformed(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*suiteReport)
		wantErr string
	}{
		{"wrong schema", func(r *suiteReport) { r.Schema = "vwbench/v0" }, "schema"},
		{"one scale", func(r *suiteReport) { r.Scales = r.Scales[:1] }, "scales"},
		{"missing cell", func(r *suiteReport) { r.Results = r.Results[1:] }, "missing cell"},
		{"zero seconds", func(r *suiteReport) { r.Results[0].Seconds = 0 }, "seconds"},
		{"no metrics", func(r *suiteReport) { r.Results[0].Metrics = nil }, "metric deltas"},
		{"missing concurrency cell", func(r *suiteReport) {
			dropCell(r, func(c *suiteCell) bool { return c.Clients == 8 && !c.Coop })
		}, "missing concurrency cell"},
		{"degree rows disagree", func(r *suiteReport) {
			mutateCell(r, func(c *suiteCell) bool { return c.Clients == 8 && !c.Coop },
				func(c *suiteCell) { c.ResultRows = 99 })
		}, "result rows"},
		{"concurrency cell without loads", func(r *suiteReport) {
			mutateCell(r, func(c *suiteCell) bool { return c.Clients == 8 && !c.Coop },
				func(c *suiteCell) { c.LoadsPerQuery = 0 })
		}, "no physical loads"},
		{"missing cluster cell", func(r *suiteReport) {
			dropCell(r, func(c *suiteCell) bool {
				return c.Name == cpruneName && c.Layout == uncLayout
			})
		}, "missing cluster cell"},
		{"clustered scan touches too many groups", func(r *suiteReport) {
			mutateCell(r, func(c *suiteCell) bool {
				return c.Name == cpruneName && c.Layout == cluLayout
			}, func(c *suiteCell) { c.GroupsTouched = 0.5 })
		}, "touched"},
		{"cprune cell without ratio", func(r *suiteReport) {
			mutateCell(r, func(c *suiteCell) bool {
				return c.Name == cpruneName && c.Layout == cluLayout
			}, func(c *suiteCell) { c.GroupsTouched = 0 })
		}, "no groups-touched ratio"},
		{"missing scaling cell", func(r *suiteReport) {
			for i, c := range r.Results {
				if c.Parallel == 4 && c.Name == "psort" {
					r.Results = append(r.Results[:i], r.Results[i+1:]...)
					return
				}
			}
		}, "missing scaling cell"},
	}
	for _, tc := range cases {
		rep := validReport()
		tc.mutate(&rep)
		problems := checkReport(marshal(t, rep))
		if len(problems) == 0 {
			t.Fatalf("%s: accepted", tc.name)
		}
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.wantErr) {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s: problems %v lack %q", tc.name, problems, tc.wantErr)
		}
	}
	if len(checkReport([]byte("{not json"))) == 0 {
		t.Fatal("garbage accepted")
	}
}

// Diffing against an older artifact pairs shared cells, flags new ones, and
// reports scaling speedups vs the P=1 baseline.
func TestDiffReports(t *testing.T) {
	prev := suiteReport{Schema: "vwbench/v1", Scales: []int{1000, 4000}}
	prev.Results = append(prev.Results, suiteCell{
		Name: "scan", Rows: 1000, Seconds: 0.004,
		Metrics: map[string]float64{"x": 1},
	})
	cur := validReport()
	var buf strings.Builder
	if err := diffReports(&buf, marshal(t, prev), marshal(t, cur)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scan@1000",                       // shared cell diffed
		"new",                             // cells absent from prev flagged, not failed
		"scaling pscan@4000/P4",           // speedup line per parallel cell
		"speedup vs P=1: 4.00x",           // 0.002/P timings → P× speedup
		"cscan@4000/C8+coop",              // concurrency cells appear
		"loads/query: 1.2 vs lru 10",      // coop-vs-lru comparison line
		"cprune@4000+clu",                 // cluster cells appear
		"groups touched: 20% vs unc 100%", // clustered-pruning comparison line
		"sorted load vs plain: 1.00x",     // clustered-load cost line
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff output lacks %q:\n%s", want, out)
		}
	}
	if err := diffReports(&buf, []byte("nope"), marshal(t, cur)); err == nil {
		t.Fatal("unparseable previous report accepted")
	}
}
