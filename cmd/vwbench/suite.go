package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	"vectorwise/internal/colstore"
	"vectorwise/internal/datagen"
	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/session"
	"vectorwise/internal/types"
)

// Suite mode runs a fixed scan/filter/agg/join grid at two scales, plus a
// parallel-scaling matrix (pscan/pjoin/psort × P=1,2,4), a concurrency
// matrix (cscan × C=1,4,8 × cooperative/LRU buffering) and a clustered-load
// matrix (cload/cprune × clustered/unclustered layout) at the large scale,
// and emits a machine-readable report (schema vwbench/v4) with the
// engine-metric deltas attracted by each cell. -check validates a previously
// emitted report — optionally diffing its timings against an older artifact
// via -prev — which is what CI's bench-smoke job does. -trend prints the
// timing trajectory across every committed BENCH_*.json artifact.
var (
	suiteMode = flag.Bool("suite", false, "run the scan/filter/agg/join suite instead of E1…E12")
	jsonPath  = flag.String("json", "", "write the suite report to this file (suite mode)")
	checkPath = flag.String("check", "", "validate a suite report file and exit")
	prevPath  = flag.String("prev", "", "older suite report to diff timings against (with -check)")
)

// suiteSchema identifies the report format; bump on breaking changes.
// v2 added the parallel-scaling cells (Parallel > 0); v3 the concurrency
// cells (Clients > 0) with their physical loads-per-query; v4 the
// clustered-load cells (Layout != "") with their groups-touched ratio.
const suiteSchema = "vwbench/v4"

type suiteCell struct {
	Name       string  `json:"name"`
	Rows       int     `json:"rows"`
	Parallel   int     `json:"parallel,omitempty"` // 0 = serial grid cell
	Clients    int     `json:"clients,omitempty"`  // >0 = concurrency cell
	Coop       bool    `json:"coop,omitempty"`     // concurrency cells: sharing mode
	Layout     string  `json:"layout,omitempty"`   // cluster cells: "clu" or "unc"
	Seconds    float64 `json:"seconds"`
	ResultRows int64   `json:"result_rows"`
	// LoadsPerQuery is the physical row-group reads per client query
	// (concurrency cells only): the number cooperative scans push sublinear.
	LoadsPerQuery float64 `json:"loads_per_query,omitempty"`
	// GroupsTouched is the fraction of row groups a cprune range scan
	// actually decoded (cluster cells only): scanned / (scanned + skipped).
	// The clustered layout must keep it at or below cpruneMaxTouched.
	GroupsTouched float64            `json:"groups_touched_ratio,omitempty"`
	Metrics       map[string]float64 `json:"metrics"`
}

func (c *suiteCell) key() string {
	if c.Layout != "" {
		return fmt.Sprintf("%s@%d+%s", c.Name, c.Rows, c.Layout)
	}
	if c.Clients > 0 {
		mode := "lru"
		if c.Coop {
			mode = "coop"
		}
		return fmt.Sprintf("%s@%d/C%d+%s", c.Name, c.Rows, c.Clients, mode)
	}
	if c.Parallel > 0 {
		return fmt.Sprintf("%s@%d/P%d", c.Name, c.Rows, c.Parallel)
	}
	return fmt.Sprintf("%s@%d", c.Name, c.Rows)
}

type suiteReport struct {
	Schema  string      `json:"schema"`
	Scales  []int       `json:"scales"`
	Reps    int         `json:"reps"`
	Results []suiteCell `json:"results"`
}

// suiteQueries is the benchmark grid; every name must appear at every scale
// for a report to validate.
var suiteQueries = []struct{ name, sql string }{
	{"scan", `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`},
	{"filter", `SELECT COUNT(*) FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-01' AND l_quantity < 25`},
	{"agg", q1},
	{"join", `SELECT o_orderpriority, COUNT(*) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority`},
}

// scalingQueries is the parallel-scaling matrix, run at the large scale only:
// each query at every degree in scalingDegrees. P=1 is the serial baseline
// (the rewriter plants no exchanges at degree 1).
var scalingDegrees = []int{1, 2, 4}

var scalingQueries = []struct{ name, sql string }{
	{"pscan", `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`},
	{"pjoin", `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey`},
	{"psort", `SELECT l_orderkey, l_extendedprice FROM lineitem
		ORDER BY l_extendedprice DESC, l_orderkey LIMIT 100`},
}

// The concurrency matrix: C clients issue the same full scan through a
// session pool while the buffer pool holds far fewer groups than the table,
// once with cooperative scans and once with plain LRU. Run at the large
// scale only.
var concurrencyClients = []int{1, 4, 8}

const (
	cscanName        = "cscan"
	concurrencyPool  = 4                      // admission slots (< max client count)
	concurrencyCap   = 8                      // max buffer-pool capacity in row groups
	concurrencyDelay = 200 * time.Microsecond // simulated per-group read latency
)

// concurrencyBuffer sizes the buffer pool well below the table's group
// count (clamped to [2, concurrencyCap]) so every scan must do physical
// reads even at small -rows; a pool that swallows the whole table would
// record zero loads and void the cell.
func concurrencyBuffer(scale int) int {
	groups := (scale + colstore.BlockRows - 1) / colstore.BlockRows
	capacity := groups / 4
	if capacity < 2 {
		capacity = 2
	}
	if capacity > concurrencyCap {
		capacity = concurrencyCap
	}
	return capacity
}

// cscan aggregates are order-independent (integer sums, MIN/MAX) so the
// byte-identical-to-serial check holds regardless of morsel interleaving;
// a float SUM would drift with the parallel reduction order.
const (
	cscanBaseSQL = `SELECT COUNT(*), SUM(l_orderkey), SUM(l_quantity),
		MIN(l_extendedprice), MAX(l_extendedprice) FROM lineitem`
	cscanSQL = cscanBaseSQL + ` WITH (PARALLEL=2)`
)

// counterSnapshot captures every counter in the registry for delta-ing.
func counterSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, s := range metrics.Default.Snapshot() {
		if s.Kind == "counter" {
			out[s.Name] = s.Value
		}
	}
	return out
}

// metricDeltas returns the counters that moved between two snapshots.
func metricDeltas(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

func suiteDB(rows int) *engine.DB {
	db := engine.Open()
	loadSuiteTables(db, rows)
	return db
}

// loadSuiteTables fills a (possibly pre-configured) DB with the suite's
// lineitem/orders tables.
func loadSuiteTables(db *engine.DB, rows int) {
	ctx := context.Background()
	mustRun(db, ctx, datagen.LineitemDDL)
	mustRun(db, ctx, datagen.OrdersDDL)
	sf := float64(rows) / datagen.RowsPerSF
	check(db.LoadBatchFunc("lineitem", func(emit func(row []types.Value) error) error {
		return datagen.Lineitems(sf, 42, emit)
	}))
	check(db.LoadBatchFunc("orders", func(emit func(row []types.Value) error) error {
		return datagen.Orders(sf, 42, emit)
	}))
	mustRun(db, ctx, "ANALYZE lineitem")
}

// runCell measures one suite query on db and appends the cell to rep.
func runCell(rep *suiteReport, db *engine.DB, name, sql string, scale, parallel int) {
	if parallel > 0 {
		sql += fmt.Sprintf(" WITH (PARALLEL=%d)", parallel)
	}
	mustRun(db, context.Background(), sql) // warm
	before := counterSnapshot()
	var resRows int64
	d := best(func() {
		res := mustRun(db, context.Background(), sql)
		resRows = int64(len(res.Rows))
	})
	cell := suiteCell{
		Name:       name,
		Rows:       scale,
		Parallel:   parallel,
		Seconds:    d.Seconds(),
		ResultRows: resRows,
		Metrics:    metricDeltas(before, counterSnapshot()),
	}
	rep.Results = append(rep.Results, cell)
	fmt.Printf("%-14s rows=%-9d %12v  (%d result rows)\n", cell.key(), scale, d, resRows)
}

// runConcurrencyCells measures C concurrent cscan queries through the
// session layer, in cooperative and LRU-only modes. Each mode gets a fresh
// DB whose buffer pool is far smaller than the table and whose group reads
// carry a simulated latency, so buffering policy — not CPU — dominates.
// Every client's result must match the serial answer exactly; the cell
// records the physical loads per query, which cooperative scans push
// sublinear in C.
func runConcurrencyCells(rep *suiteReport, scale int) {
	for _, coop := range []bool{true, false} {
		db := engine.Open()
		db.CoopScans = coop
		db.BufferGroups = concurrencyBuffer(scale)
		db.ScanIODelay = concurrencyDelay
		loadSuiteTables(db, scale)
		ctx := context.Background()
		serial := mustRun(db, ctx, cscanBaseSQL)
		pool := session.NewPool(db, session.Config{
			MaxConcurrent: concurrencyPool,
			MaxQueue:      2 * concurrencyClients[len(concurrencyClients)-1],
		})
		for _, clients := range concurrencyClients {
			lruB, coopB, _ := db.ShareStats("lineitem")
			before := counterSnapshot()
			results := make([]*engine.Result, clients)
			errs := make([]error, clients)
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s, err := pool.Open()
					if err != nil {
						errs[i] = err
						return
					}
					defer s.Close()
					results[i], errs[i] = s.Exec(ctx, cscanSQL)
				}(i)
			}
			wg.Wait()
			d := time.Since(start)
			for i := 0; i < clients; i++ {
				if errs[i] != nil {
					log.Fatalf("cscan C=%d coop=%v client %d: %v", clients, coop, i, errs[i])
				}
				if !reflect.DeepEqual(results[i].Rows, serial.Rows) {
					log.Fatalf("cscan C=%d coop=%v client %d: result diverges from serial:\n%v\nwant %v",
						clients, coop, i, results[i].Rows, serial.Rows)
				}
			}
			lruA, coopA, ok := db.ShareStats("lineitem")
			if !ok {
				log.Fatal("cscan: no scan share built for lineitem")
			}
			loads := float64(lruA.Loads-lruB.Loads) + float64(coopA.Loads-coopB.Loads)
			cell := suiteCell{
				Name:          cscanName,
				Rows:          scale,
				Clients:       clients,
				Coop:          coop,
				Seconds:       d.Seconds(),
				ResultRows:    int64(len(serial.Rows)),
				LoadsPerQuery: loads / float64(clients),
				Metrics:       metricDeltas(before, counterSnapshot()),
			}
			rep.Results = append(rep.Results, cell)
			fmt.Printf("%-18s rows=%-9d %12v  loads/query=%.1f\n",
				cell.key(), scale, d, cell.LoadsPerQuery)
		}
	}
}

func runSuite() {
	scales := []int{*rows, *rows * 4}
	rep := suiteReport{Schema: suiteSchema, Scales: scales, Reps: *reps}
	for _, scale := range scales {
		db := suiteDB(scale)
		for _, q := range suiteQueries {
			runCell(&rep, db, q.name, q.sql, scale, 0)
		}
		if scale == scales[len(scales)-1] {
			for _, q := range scalingQueries {
				for _, p := range scalingDegrees {
					runCell(&rep, db, q.name, q.sql, scale, p)
				}
			}
		}
	}
	runConcurrencyCells(&rep, scales[len(scales)-1])
	runClusterCells(&rep, scales[len(scales)-1])
	out, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	out = append(out, '\n')
	if *jsonPath != "" {
		check(os.WriteFile(*jsonPath, out, 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	} else {
		os.Stdout.Write(out)
	}
}

// checkReport validates a suite report: parseable, right schema, full grid
// (including the parallel-scaling matrix at the large scale), positive
// timings, per-cell metric deltas present, and identical result rows across
// degrees of the same scaling query. Returns the problems found
// (empty = valid).
func checkReport(data []byte) []string {
	var rep suiteReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return []string{"unparseable JSON: " + err.Error()}
	}
	var problems []string
	if rep.Schema != suiteSchema {
		problems = append(problems, fmt.Sprintf("schema %q, want %q", rep.Schema, suiteSchema))
	}
	if len(rep.Scales) < 2 {
		problems = append(problems, fmt.Sprintf("%d scales, want >= 2", len(rep.Scales)))
	}
	seen := map[string]bool{}
	parRows := map[string]int64{} // name@rows → result rows at first degree seen
	for i, c := range rep.Results {
		id := fmt.Sprintf("results[%d] (%s)", i, c.key())
		if c.Name == "" {
			problems = append(problems, id+": empty name")
		}
		if c.Rows <= 0 {
			problems = append(problems, id+": non-positive rows")
		}
		if c.Seconds <= 0 {
			problems = append(problems, id+": non-positive seconds")
		}
		if len(c.Metrics) == 0 {
			problems = append(problems, id+": no metric deltas")
		}
		if c.Parallel > 0 || c.Clients > 0 {
			rk := fmt.Sprintf("%s@%d", c.Name, c.Rows)
			if prev, ok := parRows[rk]; !ok {
				parRows[rk] = c.ResultRows
			} else if prev != c.ResultRows {
				problems = append(problems, fmt.Sprintf(
					"%s: %d result rows, other degrees saw %d", id, c.ResultRows, prev))
			}
		}
		if c.Clients > 0 && c.LoadsPerQuery <= 0 {
			problems = append(problems, id+": no physical loads recorded (scans bypassed the buffer seam)")
		}
		if c.Name == cpruneName && c.Layout == cluLayout {
			switch {
			case c.GroupsTouched <= 0:
				problems = append(problems, id+": no groups-touched ratio recorded (range scan bypassed the zone maps)")
			case c.GroupsTouched > cpruneMaxTouched:
				problems = append(problems, fmt.Sprintf(
					"%s: clustered range scan touched %.0f%% of row groups, want <= %.0f%%",
					id, c.GroupsTouched*100, cpruneMaxTouched*100))
			}
		}
		seen[c.key()] = true
	}
	for _, scale := range rep.Scales {
		for _, q := range suiteQueries {
			key := fmt.Sprintf("%s@%d", q.name, scale)
			if !seen[key] {
				problems = append(problems, "missing cell "+key)
			}
		}
	}
	if len(rep.Scales) > 0 {
		large := rep.Scales[len(rep.Scales)-1]
		for _, q := range scalingQueries {
			for _, p := range scalingDegrees {
				key := fmt.Sprintf("%s@%d/P%d", q.name, large, p)
				if !seen[key] {
					problems = append(problems, "missing scaling cell "+key)
				}
			}
		}
		for _, mode := range []string{"coop", "lru"} {
			for _, cl := range concurrencyClients {
				key := fmt.Sprintf("%s@%d/C%d+%s", cscanName, large, cl, mode)
				if !seen[key] {
					problems = append(problems, "missing concurrency cell "+key)
				}
			}
		}
		for _, name := range []string{cloadName, cpruneName} {
			for _, layout := range []string{cluLayout, uncLayout} {
				key := fmt.Sprintf("%s@%d+%s", name, large, layout)
				if !seen[key] {
					problems = append(problems, "missing cluster cell "+key)
				}
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// diffReports prints timing deltas for cells present in both reports, and
// the scaling table (speedup vs P=1) of the current report. Informational
// only: timings shift with hardware, so regressions are not failures —
// the scaling cells exist so the trend is visible in review.
func diffReports(w io.Writer, prev, cur []byte) error {
	var old, now suiteReport
	if err := json.Unmarshal(prev, &old); err != nil {
		return fmt.Errorf("previous report: %w", err)
	}
	if err := json.Unmarshal(cur, &now); err != nil {
		return fmt.Errorf("current report: %w", err)
	}
	oldCells := map[string]suiteCell{}
	for _, c := range old.Results {
		oldCells[c.key()] = c
	}
	fmt.Fprintf(w, "%-16s %12s %12s %8s\n", "cell", "prev", "now", "ratio")
	for _, c := range now.Results {
		o, ok := oldCells[c.key()]
		if !ok {
			fmt.Fprintf(w, "%-16s %12s %12.2fms %8s\n", c.key(), "—", c.Seconds*1e3, "new")
			continue
		}
		fmt.Fprintf(w, "%-16s %10.2fms %10.2fms %7.2fx\n",
			c.key(), o.Seconds*1e3, c.Seconds*1e3, c.Seconds/o.Seconds)
	}
	base := map[string]float64{} // scaling baselines: name@rows at P=1
	for _, c := range now.Results {
		if c.Parallel == 1 {
			base[fmt.Sprintf("%s@%d", c.Name, c.Rows)] = c.Seconds
		}
	}
	for _, c := range now.Results {
		if c.Parallel > 1 {
			if b := base[fmt.Sprintf("%s@%d", c.Name, c.Rows)]; b > 0 {
				fmt.Fprintf(w, "scaling %-12s speedup vs P=1: %.2fx\n", c.key(), b/c.Seconds)
			}
		}
	}
	// Cooperative-scan effect: physical loads per query, coop vs LRU at the
	// same client count.
	lruLoads := map[string]float64{}
	for _, c := range now.Results {
		if c.Clients > 0 && !c.Coop {
			lruLoads[fmt.Sprintf("%s@%d/C%d", c.Name, c.Rows, c.Clients)] = c.LoadsPerQuery
		}
	}
	for _, c := range now.Results {
		if c.Clients > 0 && c.Coop {
			if l := lruLoads[fmt.Sprintf("%s@%d/C%d", c.Name, c.Rows, c.Clients)]; l > 0 {
				fmt.Fprintf(w, "coop    %-12s loads/query: %.1f vs lru %.1f\n",
					c.key(), c.LoadsPerQuery, l)
			}
		}
	}
	// Clustered-layout effect: what the sort on the way in costs (cload) and
	// what it buys (cprune touches a sliver of the groups the plain layout
	// must decode in full).
	unc := map[string]suiteCell{}
	for _, c := range now.Results {
		if c.Layout == uncLayout {
			unc[fmt.Sprintf("%s@%d", c.Name, c.Rows)] = c
		}
	}
	for _, c := range now.Results {
		if c.Layout != cluLayout {
			continue
		}
		u, ok := unc[fmt.Sprintf("%s@%d", c.Name, c.Rows)]
		if !ok {
			continue
		}
		switch c.Name {
		case cloadName:
			if u.Seconds > 0 {
				fmt.Fprintf(w, "cluster %-12s sorted load vs plain: %.2fx\n",
					c.key(), c.Seconds/u.Seconds)
			}
		case cpruneName:
			fmt.Fprintf(w, "cluster %-12s groups touched: %.0f%% vs unc %.0f%%\n",
				c.key(), c.GroupsTouched*100, u.GroupsTouched*100)
		}
	}
	return nil
}

func runCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	if problems := checkReport(data); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "check:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: valid %s report\n", path, suiteSchema)
	if *prevPath != "" {
		prev, err := os.ReadFile(*prevPath)
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		if err := diffReports(os.Stdout, prev, data); err != nil {
			log.Fatalf("check: %v", err)
		}
	}
}
