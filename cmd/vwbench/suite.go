package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"vectorwise/internal/datagen"
	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
)

// Suite mode runs a fixed scan/filter/agg/join grid at two scales and emits
// a machine-readable report (schema vwbench/v1) with the engine-metric
// deltas attracted by each cell. -check validates a previously emitted
// report, which is what CI's bench-smoke job does.
var (
	suiteMode = flag.Bool("suite", false, "run the scan/filter/agg/join suite instead of E1…E12")
	jsonPath  = flag.String("json", "", "write the suite report to this file (suite mode)")
	checkPath = flag.String("check", "", "validate a suite report file and exit")
)

// suiteSchema identifies the report format; bump on breaking changes.
const suiteSchema = "vwbench/v1"

type suiteCell struct {
	Name       string             `json:"name"`
	Rows       int                `json:"rows"`
	Seconds    float64            `json:"seconds"`
	ResultRows int64              `json:"result_rows"`
	Metrics    map[string]float64 `json:"metrics"`
}

type suiteReport struct {
	Schema  string      `json:"schema"`
	Scales  []int       `json:"scales"`
	Reps    int         `json:"reps"`
	Results []suiteCell `json:"results"`
}

// suiteQueries is the benchmark grid; every name must appear at every scale
// for a report to validate.
var suiteQueries = []struct{ name, sql string }{
	{"scan", `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`},
	{"filter", `SELECT COUNT(*) FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-01' AND l_quantity < 25`},
	{"agg", q1},
	{"join", `SELECT o_orderpriority, COUNT(*) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority`},
}

// counterSnapshot captures every counter in the registry for delta-ing.
func counterSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, s := range metrics.Default.Snapshot() {
		if s.Kind == "counter" {
			out[s.Name] = s.Value
		}
	}
	return out
}

// metricDeltas returns the counters that moved between two snapshots.
func metricDeltas(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

func suiteDB(rows int) *engine.DB {
	db := engine.Open()
	ctx := context.Background()
	mustRun(db, ctx, datagen.LineitemDDL)
	mustRun(db, ctx, datagen.OrdersDDL)
	sf := float64(rows) / datagen.RowsPerSF
	check(db.LoadBatchFunc("lineitem", func(emit func(row []types.Value) error) error {
		return datagen.Lineitems(sf, 42, emit)
	}))
	check(db.LoadBatchFunc("orders", func(emit func(row []types.Value) error) error {
		return datagen.Orders(sf, 42, emit)
	}))
	mustRun(db, ctx, "ANALYZE lineitem")
	return db
}

func runSuite() {
	scales := []int{*rows, *rows * 4}
	rep := suiteReport{Schema: suiteSchema, Scales: scales, Reps: *reps}
	for _, scale := range scales {
		db := suiteDB(scale)
		for _, q := range suiteQueries {
			mustRun(db, context.Background(), q.sql) // warm
			before := counterSnapshot()
			var resRows int64
			d := best(func() {
				res := mustRun(db, context.Background(), q.sql)
				resRows = int64(len(res.Rows))
			})
			rep.Results = append(rep.Results, suiteCell{
				Name:       q.name,
				Rows:       scale,
				Seconds:    d.Seconds(),
				ResultRows: resRows,
				Metrics:    metricDeltas(before, counterSnapshot()),
			})
			fmt.Printf("%-8s rows=%-9d %12v  (%d result rows)\n", q.name, scale, d, resRows)
		}
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	out = append(out, '\n')
	if *jsonPath != "" {
		check(os.WriteFile(*jsonPath, out, 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	} else {
		os.Stdout.Write(out)
	}
}

// checkReport validates a suite report: parseable, right schema, full grid,
// positive timings, and per-cell metric deltas present. Returns the
// problems found (empty = valid).
func checkReport(data []byte) []string {
	var rep suiteReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return []string{"unparseable JSON: " + err.Error()}
	}
	var problems []string
	if rep.Schema != suiteSchema {
		problems = append(problems, fmt.Sprintf("schema %q, want %q", rep.Schema, suiteSchema))
	}
	if len(rep.Scales) < 2 {
		problems = append(problems, fmt.Sprintf("%d scales, want >= 2", len(rep.Scales)))
	}
	seen := map[string]bool{}
	for i, c := range rep.Results {
		id := fmt.Sprintf("results[%d] (%s@%d)", i, c.Name, c.Rows)
		if c.Name == "" {
			problems = append(problems, id+": empty name")
		}
		if c.Rows <= 0 {
			problems = append(problems, id+": non-positive rows")
		}
		if c.Seconds <= 0 {
			problems = append(problems, id+": non-positive seconds")
		}
		if len(c.Metrics) == 0 {
			problems = append(problems, id+": no metric deltas")
		}
		seen[fmt.Sprintf("%s@%d", c.Name, c.Rows)] = true
	}
	for _, scale := range rep.Scales {
		for _, q := range suiteQueries {
			key := fmt.Sprintf("%s@%d", q.name, scale)
			if !seen[key] {
				problems = append(problems, "missing cell "+key)
			}
		}
	}
	sort.Strings(problems)
	return problems
}

func runCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	if problems := checkReport(data); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "check:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: valid %s report\n", path, suiteSchema)
}
