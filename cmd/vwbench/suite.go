package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"vectorwise/internal/datagen"
	"vectorwise/internal/engine"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
)

// Suite mode runs a fixed scan/filter/agg/join grid at two scales, plus a
// parallel-scaling matrix (pscan/pjoin/psort × P=1,2,4) at the large scale,
// and emits a machine-readable report (schema vwbench/v2) with the
// engine-metric deltas attracted by each cell. -check validates a previously
// emitted report — optionally diffing its timings against an older artifact
// via -prev — which is what CI's bench-smoke job does.
var (
	suiteMode = flag.Bool("suite", false, "run the scan/filter/agg/join suite instead of E1…E12")
	jsonPath  = flag.String("json", "", "write the suite report to this file (suite mode)")
	checkPath = flag.String("check", "", "validate a suite report file and exit")
	prevPath  = flag.String("prev", "", "older suite report to diff timings against (with -check)")
)

// suiteSchema identifies the report format; bump on breaking changes.
// v2 added the parallel-scaling cells (Parallel > 0).
const suiteSchema = "vwbench/v2"

type suiteCell struct {
	Name       string             `json:"name"`
	Rows       int                `json:"rows"`
	Parallel   int                `json:"parallel,omitempty"` // 0 = serial grid cell
	Seconds    float64            `json:"seconds"`
	ResultRows int64              `json:"result_rows"`
	Metrics    map[string]float64 `json:"metrics"`
}

func (c *suiteCell) key() string {
	if c.Parallel > 0 {
		return fmt.Sprintf("%s@%d/P%d", c.Name, c.Rows, c.Parallel)
	}
	return fmt.Sprintf("%s@%d", c.Name, c.Rows)
}

type suiteReport struct {
	Schema  string      `json:"schema"`
	Scales  []int       `json:"scales"`
	Reps    int         `json:"reps"`
	Results []suiteCell `json:"results"`
}

// suiteQueries is the benchmark grid; every name must appear at every scale
// for a report to validate.
var suiteQueries = []struct{ name, sql string }{
	{"scan", `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`},
	{"filter", `SELECT COUNT(*) FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-01' AND l_quantity < 25`},
	{"agg", q1},
	{"join", `SELECT o_orderpriority, COUNT(*) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey GROUP BY o_orderpriority`},
}

// scalingQueries is the parallel-scaling matrix, run at the large scale only:
// each query at every degree in scalingDegrees. P=1 is the serial baseline
// (the rewriter plants no exchanges at degree 1).
var scalingDegrees = []int{1, 2, 4}

var scalingQueries = []struct{ name, sql string }{
	{"pscan", `SELECT COUNT(*), SUM(l_quantity) FROM lineitem`},
	{"pjoin", `SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem
		JOIN orders ON l_orderkey = o_orderkey`},
	{"psort", `SELECT l_orderkey, l_extendedprice FROM lineitem
		ORDER BY l_extendedprice DESC, l_orderkey LIMIT 100`},
}

// counterSnapshot captures every counter in the registry for delta-ing.
func counterSnapshot() map[string]float64 {
	out := map[string]float64{}
	for _, s := range metrics.Default.Snapshot() {
		if s.Kind == "counter" {
			out[s.Name] = s.Value
		}
	}
	return out
}

// metricDeltas returns the counters that moved between two snapshots.
func metricDeltas(before, after map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

func suiteDB(rows int) *engine.DB {
	db := engine.Open()
	ctx := context.Background()
	mustRun(db, ctx, datagen.LineitemDDL)
	mustRun(db, ctx, datagen.OrdersDDL)
	sf := float64(rows) / datagen.RowsPerSF
	check(db.LoadBatchFunc("lineitem", func(emit func(row []types.Value) error) error {
		return datagen.Lineitems(sf, 42, emit)
	}))
	check(db.LoadBatchFunc("orders", func(emit func(row []types.Value) error) error {
		return datagen.Orders(sf, 42, emit)
	}))
	mustRun(db, ctx, "ANALYZE lineitem")
	return db
}

// runCell measures one suite query on db and appends the cell to rep.
func runCell(rep *suiteReport, db *engine.DB, name, sql string, scale, parallel int) {
	if parallel > 0 {
		sql += fmt.Sprintf(" WITH (PARALLEL=%d)", parallel)
	}
	mustRun(db, context.Background(), sql) // warm
	before := counterSnapshot()
	var resRows int64
	d := best(func() {
		res := mustRun(db, context.Background(), sql)
		resRows = int64(len(res.Rows))
	})
	cell := suiteCell{
		Name:       name,
		Rows:       scale,
		Parallel:   parallel,
		Seconds:    d.Seconds(),
		ResultRows: resRows,
		Metrics:    metricDeltas(before, counterSnapshot()),
	}
	rep.Results = append(rep.Results, cell)
	fmt.Printf("%-14s rows=%-9d %12v  (%d result rows)\n", cell.key(), scale, d, resRows)
}

func runSuite() {
	scales := []int{*rows, *rows * 4}
	rep := suiteReport{Schema: suiteSchema, Scales: scales, Reps: *reps}
	for _, scale := range scales {
		db := suiteDB(scale)
		for _, q := range suiteQueries {
			runCell(&rep, db, q.name, q.sql, scale, 0)
		}
		if scale == scales[len(scales)-1] {
			for _, q := range scalingQueries {
				for _, p := range scalingDegrees {
					runCell(&rep, db, q.name, q.sql, scale, p)
				}
			}
		}
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	check(err)
	out = append(out, '\n')
	if *jsonPath != "" {
		check(os.WriteFile(*jsonPath, out, 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	} else {
		os.Stdout.Write(out)
	}
}

// checkReport validates a suite report: parseable, right schema, full grid
// (including the parallel-scaling matrix at the large scale), positive
// timings, per-cell metric deltas present, and identical result rows across
// degrees of the same scaling query. Returns the problems found
// (empty = valid).
func checkReport(data []byte) []string {
	var rep suiteReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return []string{"unparseable JSON: " + err.Error()}
	}
	var problems []string
	if rep.Schema != suiteSchema {
		problems = append(problems, fmt.Sprintf("schema %q, want %q", rep.Schema, suiteSchema))
	}
	if len(rep.Scales) < 2 {
		problems = append(problems, fmt.Sprintf("%d scales, want >= 2", len(rep.Scales)))
	}
	seen := map[string]bool{}
	parRows := map[string]int64{} // name@rows → result rows at first degree seen
	for i, c := range rep.Results {
		id := fmt.Sprintf("results[%d] (%s)", i, c.key())
		if c.Name == "" {
			problems = append(problems, id+": empty name")
		}
		if c.Rows <= 0 {
			problems = append(problems, id+": non-positive rows")
		}
		if c.Seconds <= 0 {
			problems = append(problems, id+": non-positive seconds")
		}
		if len(c.Metrics) == 0 {
			problems = append(problems, id+": no metric deltas")
		}
		if c.Parallel > 0 {
			rk := fmt.Sprintf("%s@%d", c.Name, c.Rows)
			if prev, ok := parRows[rk]; !ok {
				parRows[rk] = c.ResultRows
			} else if prev != c.ResultRows {
				problems = append(problems, fmt.Sprintf(
					"%s: %d result rows, other degrees saw %d", id, c.ResultRows, prev))
			}
		}
		seen[c.key()] = true
	}
	for _, scale := range rep.Scales {
		for _, q := range suiteQueries {
			key := fmt.Sprintf("%s@%d", q.name, scale)
			if !seen[key] {
				problems = append(problems, "missing cell "+key)
			}
		}
	}
	if len(rep.Scales) > 0 {
		large := rep.Scales[len(rep.Scales)-1]
		for _, q := range scalingQueries {
			for _, p := range scalingDegrees {
				key := fmt.Sprintf("%s@%d/P%d", q.name, large, p)
				if !seen[key] {
					problems = append(problems, "missing scaling cell "+key)
				}
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// diffReports prints timing deltas for cells present in both reports, and
// the scaling table (speedup vs P=1) of the current report. Informational
// only: timings shift with hardware, so regressions are not failures —
// the scaling cells exist so the trend is visible in review.
func diffReports(w io.Writer, prev, cur []byte) error {
	var old, now suiteReport
	if err := json.Unmarshal(prev, &old); err != nil {
		return fmt.Errorf("previous report: %w", err)
	}
	if err := json.Unmarshal(cur, &now); err != nil {
		return fmt.Errorf("current report: %w", err)
	}
	oldCells := map[string]suiteCell{}
	for _, c := range old.Results {
		oldCells[c.key()] = c
	}
	fmt.Fprintf(w, "%-16s %12s %12s %8s\n", "cell", "prev", "now", "ratio")
	for _, c := range now.Results {
		o, ok := oldCells[c.key()]
		if !ok {
			fmt.Fprintf(w, "%-16s %12s %12.2fms %8s\n", c.key(), "—", c.Seconds*1e3, "new")
			continue
		}
		fmt.Fprintf(w, "%-16s %10.2fms %10.2fms %7.2fx\n",
			c.key(), o.Seconds*1e3, c.Seconds*1e3, c.Seconds/o.Seconds)
	}
	base := map[string]float64{} // scaling baselines: name@rows at P=1
	for _, c := range now.Results {
		if c.Parallel == 1 {
			base[fmt.Sprintf("%s@%d", c.Name, c.Rows)] = c.Seconds
		}
	}
	for _, c := range now.Results {
		if c.Parallel > 1 {
			if b := base[fmt.Sprintf("%s@%d", c.Name, c.Rows)]; b > 0 {
				fmt.Fprintf(w, "scaling %-12s speedup vs P=1: %.2fx\n", c.key(), b/c.Seconds)
			}
		}
	}
	return nil
}

func runCheck(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	if problems := checkReport(data); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "check:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: valid %s report\n", path, suiteSchema)
	if *prevPath != "" {
		prev, err := os.ReadFile(*prevPath)
		if err != nil {
			log.Fatalf("check: %v", err)
		}
		if err := diffReports(os.Stdout, prev, data); err != nil {
			log.Fatalf("check: %v", err)
		}
	}
}
